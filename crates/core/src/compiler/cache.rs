//! Content-addressed plan cache: compile once, deploy from bytes.
//!
//! Compile time is pure overhead at serving scale — every deploy of a
//! zoo network re-runs mapping, the pass pipeline, buffer liveness and
//! arena sizing from scratch. This module keys the serialized plan
//! (`compiler::serial`) by a deterministic **content hash** of its
//! compile inputs, so deploying N models or restarting a server costs
//! ~zero recompiles:
//!
//! * **Key** — FNV-1a over the canonical compact rendering
//!   ([`serde::json::Value::render_compact`]) of
//!   `{schema, seed, desc, opts}`. Canonical rendering makes the hash a
//!   pure function of the *content* (field order is declaration order,
//!   floats shortest-round-trip, integers exact), stable across
//!   processes and hosts.
//! * **Store** — an in-memory map fronting an optional on-disk
//!   directory of `<key-hex16>.json` plan documents
//!   (`target/plan-cache/` by default, `YOLOC_PLAN_CACHE_DIR`
//!   overrides; [`PlanCache::in_memory`] opts out of disk entirely).
//! * **Invalidation** — anything that changes the compile inputs
//!   changes the key (different file, no collision with the old entry);
//!   a plan-format bump changes the `schema` tag inside the stored
//!   document, so stale files fail deserialization, count as a miss and
//!   are overwritten with a freshly compiled plan. Corrupt files
//!   degrade the same way: the cache is best-effort, never a
//!   correctness risk.
//!
//! A cache hit performs **zero recompilation** — asserted via
//! [`super::compile_count`] (a process-wide compile counter) by the
//! round-trip suite and the CI schema gate, not via wall clock, so the
//! gate is stable on slow hosts.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::json::Value as Json;
use serde::Serialize;

use super::{CompileOptions, CompiledNetwork};
use yoloc_models::{NetworkDesc, NetworkError};

/// Schema tag mixed into the content hash (bumped together with the
/// plan schema so key-space generations never alias).
const KEY_SCHEMA: &str = "yoloc-plan-key/1";

/// 64-bit FNV-1a over `bytes` — small, dependency-free, and stable
/// across runs/processes/hosts (unlike `std`'s randomized hasher),
/// which is what an on-disk cache key needs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The content hash keying a compile: a pure function of the network
/// description, compile options and weight seed.
pub fn content_key(desc: &NetworkDesc, opts: &CompileOptions, seed: u64) -> u64 {
    let doc = Json::obj([
        ("schema", Json::str(KEY_SCHEMA)),
        ("seed", seed.to_json()),
        ("desc", desc.to_json()),
        ("opts", opts.to_json()),
    ]);
    fnv1a(doc.render_compact().as_bytes())
}

/// An in-memory + on-disk cache of serialized compiled plans, keyed by
/// [`content_key`].
///
/// # Examples
///
/// ```
/// use yoloc_core::compiler::{cache::PlanCache, compile_count, CompileOptions};
/// use yoloc_models::zoo;
///
/// let cache = PlanCache::in_memory();
/// let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
/// let a = cache.compile_random(&desc, 7, CompileOptions::paper_default())?;
/// let before = compile_count();
/// let b = cache.compile_random(&desc, 7, CompileOptions::paper_default())?;
/// assert_eq!(compile_count(), before, "warm deploy must not recompile");
/// assert_eq!(a.mapping, b.mapping);
/// # Ok::<(), yoloc_models::NetworkError>(())
/// ```
#[derive(Debug)]
pub struct PlanCache {
    /// On-disk store; `None` keeps the cache purely in memory.
    dir: Option<PathBuf>,
    /// Serialized plan documents by content key.
    mem: Mutex<HashMap<u64, String>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// A cache backed by the default directory: `$YOLOC_PLAN_CACHE_DIR`
    /// when set, else `target/plan-cache/`.
    pub fn new() -> Self {
        let dir = std::env::var_os("YOLOC_PLAN_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/plan-cache"));
        Self::at(dir)
    }

    /// A cache backed by an explicit directory (created lazily on the
    /// first store).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        PlanCache {
            dir: Some(dir.into()),
            mem: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A purely in-memory cache (no disk traffic; hits only within this
    /// process).
    pub fn in_memory() -> Self {
        PlanCache {
            dir: None,
            mem: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Cache hits served so far (memory or disk).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses (each one a full compile) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn entry_path(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.json")))
    }

    /// Frames a plan document for disk: a 16-hex-digit FNV-1a checksum
    /// line followed by the document. JSON parses most single-bit flips
    /// just fine (a digit in a weight code, a letter in a name), so
    /// schema validation alone cannot tell "corrupt" from "stale" — the
    /// checksum makes any byte damage, including truncation, a clean
    /// miss instead of a silently wrong deployment.
    fn encode_entry(text: &str) -> String {
        format!("{:016x}\n{text}", fnv1a(text.as_bytes()))
    }

    /// Validates and strips the checksum frame; `None` on any damage
    /// (missing header, bad hex, checksum mismatch — which also covers
    /// files from the pre-checksum cache format, invalidating them).
    fn decode_entry(raw: &str) -> Option<&str> {
        let (head, body) = raw.split_once('\n')?;
        if head.len() != 16 {
            return None;
        }
        let sum = u64::from_str_radix(head, 16).ok()?;
        (sum == fnv1a(body.as_bytes())).then_some(body)
    }

    /// Deploys `desc` through the cache: a hit deserializes the stored
    /// plan (zero recompilation — bit-identical execution to a fresh
    /// compile, gated by the round-trip suite); a miss compiles via
    /// [`CompiledNetwork::compile_random`] and stores the plan in memory
    /// and (when configured) on disk. Stale or corrupt entries — e.g. a
    /// schema bump — degrade to a miss and are overwritten.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the description is inconsistent.
    pub fn compile_random(
        &self,
        desc: &NetworkDesc,
        seed: u64,
        opts: CompileOptions,
    ) -> Result<CompiledNetwork, NetworkError> {
        let key = content_key(desc, &opts, seed);
        if let Some(text) = self.mem.lock().expect("plan cache lock").get(&key).cloned() {
            if let Ok(net) = CompiledNetwork::deserialize_plan(&text) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(net);
            }
        }
        if let Some(path) = self.entry_path(key) {
            if let Ok(raw) = fs::read_to_string(&path) {
                if let Some(text) = Self::decode_entry(&raw) {
                    if let Ok(net) = CompiledNetwork::deserialize_plan(text) {
                        self.mem
                            .lock()
                            .expect("plan cache lock")
                            .insert(key, text.to_string());
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(net);
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let net = CompiledNetwork::compile_random(desc, seed, opts)?;
        let text = net.serialize_plan();
        if let Some(path) = self.entry_path(key) {
            // Best-effort: an unwritable cache directory must never fail
            // a deploy (the plan is already compiled in hand).
            let _ = path.parent().map(fs::create_dir_all);
            let _ = fs::write(&path, Self::encode_entry(&text));
        }
        self.mem.lock().expect("plan cache lock").insert(key, text);
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yoloc_models::zoo;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("yoloc-plan-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn content_key_is_input_sensitive_and_stable() {
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let opts = CompileOptions::paper_default();
        let k = content_key(&desc, &opts, 7);
        assert_eq!(k, content_key(&desc, &opts, 7), "deterministic");
        assert_ne!(k, content_key(&desc, &opts, 8), "seed-sensitive");
        let mut opts2 = CompileOptions::paper_default();
        opts2.mapping = crate::mapping::MappingStrategy::Naive;
        assert_ne!(k, content_key(&desc, &opts2, 7), "options-sensitive");
        let desc2 = zoo::scaled(&zoo::vgg8(3), 8, (16, 16));
        assert_ne!(k, content_key(&desc2, &opts, 7), "network-sensitive");
    }

    #[test]
    fn warm_hits_skip_recompilation_and_survive_process_restart() {
        let dir = tmp_dir("warm");
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let cache = PlanCache::at(&dir);
        let cold = cache
            .compile_random(&desc, 5, CompileOptions::paper_default())
            .expect("cold compile");
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        // Zero recompilation is asserted through the cache's own
        // miss counter: the process-wide `compile_count` is exercised in
        // the doctest and the bench gate, where no concurrent tests
        // compile (the lib test harness runs tests in parallel threads).
        let warm = cache
            .compile_random(&desc, 5, CompileOptions::paper_default())
            .expect("warm deploy");
        assert_eq!(
            (cache.hits(), cache.misses()),
            (1, 1),
            "warm deploy recompiled"
        );
        assert_eq!(cold.mapping, warm.mapping);
        assert_eq!(cold.serialize_plan(), warm.serialize_plan());

        // A fresh cache on the same directory models a process restart:
        // the deploy is served from disk, still without recompiling.
        let restarted = PlanCache::at(&dir);
        let from_disk = restarted
            .compile_random(&desc, 5, CompileOptions::paper_default())
            .expect("disk deploy");
        assert_eq!(
            (restarted.hits(), restarted.misses()),
            (1, 0),
            "disk hit recompiled"
        );
        assert_eq!(cold.serialize_plan(), from_disk.serialize_plan());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_stale_entries_degrade_to_a_recompile() {
        let dir = tmp_dir("stale");
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let opts = CompileOptions::paper_default();
        let key = content_key(&desc, &opts, 9);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(format!("{key:016x}.json")), "{ corrupt").unwrap();

        let cache = PlanCache::at(&dir);
        let net = cache
            .compile_random(&desc, 9, opts.clone())
            .expect("recompiles past corruption");
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // The overwritten entry now serves hits.
        let again = PlanCache::at(&dir);
        again.compile_random(&desc, 9, opts).expect("hit");
        assert_eq!((again.hits(), again.misses()), (1, 0));
        assert!(net.subarrays() > 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
