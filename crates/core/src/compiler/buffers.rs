//! Activation-arena planning: the buffer-liveness pass output.
//!
//! The pre-pass executor allocated a fresh buffer for every op output and
//! (conceptually) kept all of them alive — per-op allocation. The
//! buffer-liveness pass computes each output's **live range** (from the op
//! that produces it to the last op that reads it, through either the
//! running-activation chain or an explicit `OpSource`) and assigns outputs
//! to reusable **slots** of a planned arena by a greedy linear scan:
//! whenever an output dies, its slot is returned to the free list and the
//! next output reuses it (growing the slot to the larger footprint if
//! needed).
//!
//! The result is a [`BufferPlan`]: deterministic slot assignments, the
//! planned arena footprint (`peak_elems`, the sum of slot capacities) and
//! the naive per-op-allocation footprint it replaces (`naive_elems`).
//! Both executors report the two footprints in their `ExecutionReport`
//! (`peak_arena_bytes` vs `naive_arena_bytes`); at run time the
//! scheduler enforces the same live ranges by dropping each value the
//! moment its last reader completes (reference counting over the task
//! graph — the dynamic equivalent of this static slot plan, whose slot
//! assignments document the layout a fixed-address arena would use).

/// A planned activation arena: one slot per concurrently-live output.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BufferPlan {
    /// Arena slot holding each op's output.
    pub slot_of_op: Vec<usize>,
    /// Capacity of each slot, elements per sample (the max footprint of
    /// any output ever assigned to it).
    pub slot_elems: Vec<usize>,
    /// Planned arena footprint: sum of slot capacities, elements/sample.
    pub peak_elems: usize,
    /// Naive per-op-allocation footprint: sum of every op output,
    /// elements per sample.
    pub naive_elems: usize,
}

impl BufferPlan {
    /// Plans the arena for outputs of the given per-sample element counts
    /// and live ranges (`last_use[i]` = index of the last op reading op
    /// `i`'s output; `i` itself when unread).
    ///
    /// Deterministic greedy linear scan in op order; among free slots the
    /// largest is reused first, so small outputs soak into existing
    /// capacity before any slot grows.
    pub fn plan(out_elems: &[usize], last_use: &[usize]) -> Self {
        assert_eq!(out_elems.len(), last_use.len());
        let n = out_elems.len();
        let mut slot_of_op = vec![0usize; n];
        let mut slot_elems: Vec<usize> = Vec::new();
        // (last_use, slot) of currently-live tenants.
        let mut live: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            // Release slots whose tenant's last reader has executed.
            let mut free: Vec<usize> = Vec::new();
            live.retain(|&(lu, slot)| {
                if lu < i {
                    free.push(slot);
                    false
                } else {
                    true
                }
            });
            // Reuse the largest free slot, else open a new one.
            free.sort_by_key(|&s| slot_elems[s]);
            let slot = match free.pop() {
                Some(s) => {
                    slot_elems[s] = slot_elems[s].max(out_elems[i]);
                    s
                }
                None => {
                    slot_elems.push(out_elems[i]);
                    slot_elems.len() - 1
                }
            };
            // Slots released in the same step but not reused stay free for
            // later ops: re-add them as already-dead tenants.
            for s in free {
                live.push((0, s));
            }
            slot_of_op[i] = slot;
            live.push((last_use[i].max(i), slot));
        }
        BufferPlan {
            slot_of_op,
            peak_elems: slot_elems.iter().sum(),
            naive_elems: out_elems.iter().sum(),
            slot_elems,
        }
    }

    /// Number of arena slots.
    pub fn slots(&self) -> usize {
        self.slot_elems.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_reuses_two_slots() {
        // A pure feed-forward chain only ever has the producing and the
        // consuming output live: two slots, ping-ponged.
        let out_elems = vec![100, 80, 60, 40, 20];
        let last_use = vec![1, 2, 3, 4, 5];
        let bp = BufferPlan::plan(&out_elems, &last_use);
        assert_eq!(bp.slots(), 2);
        assert_eq!(bp.peak_elems, 100 + 80);
        assert_eq!(bp.naive_elems, 300);
        assert!(bp.peak_elems < bp.naive_elems);
    }

    #[test]
    fn long_lived_skip_holds_a_slot() {
        // Op 0's output feeds a residual at op 3: it must keep its slot
        // across ops 1 and 2.
        let out_elems = vec![50, 50, 50, 50];
        let last_use = vec![3, 2, 3, 4];
        let bp = BufferPlan::plan(&out_elems, &last_use);
        assert_eq!(bp.slot_of_op[0], bp.slot_of_op[0]);
        // Op 0 and ops 1..3 overlap: at least 2 concurrent tenants, and
        // op 0's slot is not reused before op 3.
        assert_ne!(bp.slot_of_op[0], bp.slot_of_op[1]);
        assert_ne!(bp.slot_of_op[0], bp.slot_of_op[2]);
        assert!(bp.peak_elems < bp.naive_elems);
    }

    #[test]
    fn slot_grows_to_largest_tenant() {
        let out_elems = vec![10, 200, 10];
        let last_use = vec![1, 2, 3];
        let bp = BufferPlan::plan(&out_elems, &last_use);
        assert_eq!(bp.slot_elems.iter().sum::<usize>(), bp.peak_elems);
        assert!(bp.slot_elems.iter().all(|&e| e >= 10));
        assert!(bp.slot_elems.contains(&200));
    }

    #[test]
    fn ping_pong_grows_slots_to_their_largest_tenant() {
        // A chain ping-pongs two slots; each grows to its largest tenant
        // (op 0 and op 2 share a slot here).
        let out_elems = vec![30, 70, 40];
        let last_use = vec![1, 2, 3];
        let bp = BufferPlan::plan(&out_elems, &last_use);
        assert_eq!(bp.slots(), 2);
        assert_eq!(bp.slot_of_op[0], bp.slot_of_op[2]);
        assert_eq!(bp.peak_elems, 70 + 40);
    }

    #[test]
    fn empty_plan() {
        let bp = BufferPlan::plan(&[], &[]);
        assert_eq!(bp.slots(), 0);
        assert_eq!(bp.peak_elems, 0);
        assert_eq!(bp.naive_elems, 0);
    }
}
