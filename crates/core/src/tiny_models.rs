//! Reduced-width trainable CNNs for the accuracy experiments.
//!
//! The paper's accuracy results (Fig. 6b, 10, 11) come from training VGG-8
//! and ResNet-18 in PyTorch on real datasets. Full-width training is not
//! feasible in a CPU-only reproduction, so these models keep the paper's
//! *architecture shape* (conv stages, residual blocks, GAP classifier) at
//! reduced width and train on the synthetic transfer suite in seconds.
//! What the experiments measure — the relative behaviour of the transfer
//! options — is width-independent.

use rand::Rng;

use crate::rebranch::ReBranchConv;
use yoloc_tensor::layers::{Conv2d, GlobalAvgPool, Linear, MaxPool2d, Relu};
use yoloc_tensor::{Layer, LayerExt, Param, Tensor};

/// SRAM-assisted parallel weight decoration (Fig. 6c, Option III): a
/// frozen full-precision trunk plus a *low-bit* trainable decoration conv
/// of the same shape. Decoration weights are constrained to a symmetric
/// `bits`-level grid by projected SGD ([`SpwdConv::project`]).
pub struct SpwdConv {
    /// Frozen full-precision trunk (ROM).
    pub frozen: Conv2d,
    /// Trainable low-bit decoration (SRAM).
    pub deco: Conv2d,
    /// Decoration precision in bits (the paper's working point is 2).
    pub deco_bits: u8,
    deco_scale: f32,
}

impl SpwdConv {
    /// Builds from a pretrained trunk weight; the decoration starts at
    /// zero and its quantization grid scale derives from the trunk's
    /// weight magnitude.
    pub fn from_pretrained<R: Rng + ?Sized>(
        name: &str,
        trunk_weight: Tensor,
        stride: usize,
        padding: usize,
        deco_bits: u8,
        rng: &mut R,
    ) -> Self {
        let (m, n, k) = (
            trunk_weight.shape()[0],
            trunk_weight.shape()[1],
            trunk_weight.shape()[2],
        );
        let scale = trunk_weight.abs_max().max(1e-6) * 0.5;
        let mut frozen = Conv2d::new(
            &format!("{name}.trunk"),
            n,
            m,
            k,
            stride,
            padding,
            false,
            rng,
        );
        frozen.weight.value = trunk_weight;
        frozen.freeze_all();
        let mut deco = Conv2d::new(
            &format!("{name}.deco"),
            n,
            m,
            k,
            stride,
            padding,
            false,
            rng,
        );
        deco.weight.value = Tensor::zeros(deco.weight.value.shape());
        SpwdConv {
            frozen,
            deco,
            deco_bits,
            deco_scale: scale,
        }
    }

    /// Projects decoration weights onto the `bits`-level symmetric grid
    /// (call after each optimizer step: projected gradient descent).
    pub fn project(&mut self) {
        let qmax = ((1i32 << (self.deco_bits - 1)) - 1).max(1) as f32;
        let lsb = self.deco_scale / qmax;
        self.deco
            .weight
            .value
            .map_inplace(|w| (w / lsb).round().clamp(-qmax, qmax) * lsb);
    }

    /// Trainable decoration parameter count.
    pub fn deco_param_count(&self) -> usize {
        self.deco.weight.len()
    }

    /// Frozen trunk parameter count.
    pub fn trunk_param_count(&self) -> usize {
        self.frozen.weight.len()
    }
}

impl Layer for SpwdConv {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let a = self.frozen.forward(x, train);
        let b = self.deco.forward(x, train);
        a.add(&b)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let da = self.frozen.backward(grad_out);
        let db = self.deco.backward(grad_out);
        da.add(&db)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.frozen.params_mut();
        v.extend(self.deco.params_mut());
        v
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = self.frozen.params();
        v.extend(self.deco.params());
        v
    }

    fn name(&self) -> String {
        format!("SpwdConv({}b deco)", self.deco_bits)
    }
}

/// The convolution implementation of one feature block.
#[allow(clippy::large_enum_variant)] // variants are few and long-lived
pub enum ConvUnit {
    /// A plain convolution (all-SRAM / all-ROM / ATL options).
    Plain(Conv2d),
    /// Trunk + residual branch (the proposed Option IV).
    ReBranch(ReBranchConv),
    /// Trunk + low-bit parallel decoration (Option III).
    Spwd(SpwdConv),
}

impl Layer for ConvUnit {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        match self {
            ConvUnit::Plain(c) => c.forward(x, train),
            ConvUnit::ReBranch(c) => c.forward(x, train),
            ConvUnit::Spwd(c) => c.forward(x, train),
        }
    }

    fn backward(&mut self, g: &Tensor) -> Tensor {
        match self {
            ConvUnit::Plain(c) => c.backward(g),
            ConvUnit::ReBranch(c) => c.backward(g),
            ConvUnit::Spwd(c) => c.backward(g),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            ConvUnit::Plain(c) => c.params_mut(),
            ConvUnit::ReBranch(c) => c.params_mut(),
            ConvUnit::Spwd(c) => c.params_mut(),
        }
    }

    fn params(&self) -> Vec<&Param> {
        match self {
            ConvUnit::Plain(c) => c.params(),
            ConvUnit::ReBranch(c) => c.params(),
            ConvUnit::Spwd(c) => c.params(),
        }
    }

    fn name(&self) -> String {
        match self {
            ConvUnit::Plain(c) => c.name(),
            ConvUnit::ReBranch(c) => c.name(),
            ConvUnit::Spwd(c) => c.name(),
        }
    }
}

/// One feature block: conv unit -> ReLU -> optional 2x2 max pool.
pub struct ConvBlock {
    /// The convolution implementation.
    pub unit: ConvUnit,
    act: Relu,
    pool: Option<MaxPool2d>,
    /// Residual skip over this block (tiny-ResNet style). Only valid when
    /// the unit preserves the feature-map shape.
    pub skip: bool,
    cached_in: Option<Tensor>,
}

impl ConvBlock {
    /// Builds a block from parts (used by the strategy constructors).
    pub fn bare(unit: ConvUnit, pool: bool, skip: bool) -> Self {
        Self::new(unit, pool, skip)
    }

    /// Whether a 2x2 max pool follows the activation.
    pub fn pool_enabled(&self) -> bool {
        self.pool.is_some()
    }

    fn new(unit: ConvUnit, pool: bool, skip: bool) -> Self {
        ConvBlock {
            unit,
            act: Relu::new(),
            pool: pool.then(|| MaxPool2d::new(2, 2)),
            skip,
            cached_in: None,
        }
    }
}

impl Layer for ConvBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.cached_in = Some(x.clone());
        let mut h = self.unit.forward(x, train);
        if self.skip {
            h = h.add(x);
        }
        h = self.act.forward(&h, train);
        match &mut self.pool {
            Some(p) => p.forward(&h, train),
            None => h,
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = match &mut self.pool {
            Some(p) => p.backward(grad_out),
            None => grad_out.clone(),
        };
        let g = self.act.backward(&g);
        let g_unit = self.unit.backward(&g);
        if self.skip {
            g_unit.add(&g)
        } else {
            g_unit
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.unit.params_mut()
    }

    fn params(&self) -> Vec<&Param> {
        self.unit.params()
    }

    fn name(&self) -> String {
        format!(
            "Block[{}{}]",
            self.unit.name(),
            if self.skip { "+skip" } else { "" }
        )
    }
}

/// Architecture family of a tiny model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// VGG-style plain stack.
    Vgg,
    /// ResNet-style stack with identity skips on shape-preserving blocks.
    ResNet,
}

/// A small trainable CNN: feature blocks -> GAP -> linear classifier.
pub struct TinyCnn {
    /// Feature blocks.
    pub blocks: Vec<ConvBlock>,
    gap: GlobalAvgPool,
    /// The task head (always SRAM-resident; retrained per task).
    pub classifier: Linear,
    family: Family,
}

/// Block plan entry: (in_ch, out_ch, pool_after, skip).
type BlockPlan = (usize, usize, bool, bool);

fn plan(family: Family, channels: &[usize], in_ch: usize) -> Vec<BlockPlan> {
    let mut blocks = Vec::new();
    let mut prev = in_ch;
    for (i, &c) in channels.iter().enumerate() {
        let pool = i + 1 < channels.len(); // pool between stages
        match family {
            Family::Vgg => blocks.push((prev, c, pool, false)),
            Family::ResNet => {
                // A channel-changing conv followed by a skip-wrapped conv.
                blocks.push((prev, c, false, false));
                blocks.push((c, c, pool, true));
            }
        }
        prev = c;
    }
    blocks
}

impl TinyCnn {
    /// Assembles a model from pre-built blocks and a classifier.
    pub fn from_parts(blocks: Vec<ConvBlock>, classifier: Linear, family: Family) -> Self {
        TinyCnn {
            blocks,
            gap: GlobalAvgPool::new(),
            classifier,
            family,
        }
    }

    /// Builds a plain (all-trainable) model.
    pub fn plain<R: Rng + ?Sized>(
        family: Family,
        in_ch: usize,
        channels: &[usize],
        classes: usize,
        rng: &mut R,
    ) -> Self {
        let blocks = plan(family, channels, in_ch)
            .into_iter()
            .enumerate()
            .map(|(i, (ci, co, pool, skip))| {
                let mut conv = Conv2d::new(&format!("conv{i}"), ci, co, 3, 1, 1, false, rng);
                if skip {
                    // Without batch-norm, identity-skip stacks need damped
                    // residual init to keep activation variance bounded
                    // (fixup-style): y = x + small * f(x).
                    conv.weight.value = conv.weight.value.scale(0.3);
                }
                ConvBlock::new(ConvUnit::Plain(conv), pool, skip)
            })
            .collect();
        TinyCnn {
            blocks,
            gap: GlobalAvgPool::new(),
            classifier: Linear::new(
                "fc",
                *channels.last().expect("channels"),
                classes,
                true,
                rng,
            ),
            family,
        }
    }

    /// The architecture family.
    pub fn family(&self) -> Family {
        self.family
    }

    /// Exports the conv trunk weights (for strategy construction).
    pub fn trunk_weights(&self) -> Vec<Tensor> {
        self.blocks
            .iter()
            .map(|b| match &b.unit {
                ConvUnit::Plain(c) => c.weight.value.clone(),
                ConvUnit::ReBranch(c) => c.trunk().weight.value.clone(),
                ConvUnit::Spwd(c) => c.frozen.weight.value.clone(),
            })
            .collect()
    }

    /// Block plan metadata `(pool_after, skip)` for reconstruction.
    pub fn block_meta(&self) -> Vec<(bool, bool)> {
        self.blocks
            .iter()
            .map(|b| (b.pool.is_some(), b.skip))
            .collect()
    }

    /// Computes the pooled feature vector `(N, C_last)` without the
    /// classifier (used by the ROSL prototype classifier).
    pub fn features(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = x.clone();
        for b in &mut self.blocks {
            h = b.forward(&h, train);
        }
        self.gap.forward(&h, train)
    }

    /// Parameter bits resident in ROM vs SRAM, where `deco_bits` applies
    /// to SPWD decoration weights and 8-bit precision to everything else.
    /// The classifier is always SRAM.
    pub fn memory_bits(&self) -> (u64, u64) {
        let mut rom = 0u64;
        let mut sram = 0u64;
        for b in &self.blocks {
            match &b.unit {
                ConvUnit::Plain(c) => {
                    for p in c.params() {
                        if p.frozen {
                            rom += p.len() as u64 * 8;
                        } else {
                            sram += p.len() as u64 * 8;
                        }
                    }
                }
                ConvUnit::ReBranch(c) => {
                    rom += c.rom_param_count() as u64 * 8;
                    sram += c.sram_param_count() as u64 * 8;
                }
                ConvUnit::Spwd(c) => {
                    rom += c.trunk_param_count() as u64 * 8;
                    sram += c.deco_param_count() as u64 * c.deco_bits as u64;
                }
            }
        }
        for p in self.classifier.params() {
            sram += p.len() as u64 * 8;
        }
        (rom, sram)
    }
}

impl Layer for TinyCnn {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let f = self.features(x, train);
        self.classifier.forward(&f, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.classifier.backward(grad_out);
        let mut g = self.gap.backward(&g);
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v: Vec<&mut Param> = self
            .blocks
            .iter_mut()
            .flat_map(|b| b.params_mut())
            .collect();
        v.extend(self.classifier.params_mut());
        v
    }

    fn params(&self) -> Vec<&Param> {
        let mut v: Vec<&Param> = self.blocks.iter().flat_map(|b| b.params()).collect();
        v.extend(self.classifier.params());
        v
    }

    fn name(&self) -> String {
        format!("TinyCnn({:?}, {} blocks)", self.family, self.blocks.len())
    }
}

/// Reference channel widths used across the experiments.
pub fn default_channels() -> Vec<usize> {
    vec![16, 24, 32]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yoloc_data::classification::{IMG_C, IMG_H, IMG_W};
    use yoloc_tensor::LayerExt;

    #[test]
    fn vgg_forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = TinyCnn::plain(Family::Vgg, IMG_C, &default_channels(), 10, &mut rng);
        let x = Tensor::zeros(&[2, IMG_C, IMG_H, IMG_W]);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn resnet_has_skip_blocks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = TinyCnn::plain(Family::ResNet, IMG_C, &[8, 12], 4, &mut rng);
        assert_eq!(m.blocks.len(), 4);
        assert!(m.blocks.iter().any(|b| b.skip));
        let x = Tensor::zeros(&[1, IMG_C, IMG_H, IMG_W]);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), &[1, 4]);
    }

    #[test]
    fn backward_runs_and_accumulates() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = TinyCnn::plain(Family::Vgg, IMG_C, &[6, 8], 3, &mut rng);
        let x = Tensor::randn(&[2, IMG_C, IMG_H, IMG_W], 0.0, 1.0, &mut rng);
        let y = m.forward(&x, true);
        let (_, grad) = yoloc_tensor::loss::cross_entropy(&y, &[0, 1]);
        m.backward(&grad);
        assert!(m.params().iter().any(|p| p.grad.abs_max() > 0.0));
    }

    #[test]
    fn spwd_projection_snaps_to_grid() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = Tensor::randn(&[4, 4, 3, 3], 0.0, 0.3, &mut rng);
        let mut s = SpwdConv::from_pretrained("s", w, 1, 1, 2, &mut rng);
        s.deco.weight.value = Tensor::randn(&[4, 4, 3, 3], 0.0, 0.2, &mut rng);
        s.project();
        // 2-bit symmetric: values in {-scale, 0, +scale}.
        let lsb = s.deco_scale;
        for &v in s.deco.weight.value.data() {
            let q = v / lsb;
            assert!((q - q.round()).abs() < 1e-5 && q.abs() <= 1.0 + 1e-5, "{v}");
        }
    }

    #[test]
    fn memory_bits_split_rom_sram() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = TinyCnn::plain(Family::Vgg, IMG_C, &[6, 8], 3, &mut rng);
        // All trainable: everything in SRAM.
        let (rom, sram) = m.memory_bits();
        assert_eq!(rom, 0);
        assert!(sram > 0);
        // Freeze convs: they move to ROM.
        for b in &mut m.blocks {
            b.unit.freeze_all();
        }
        let (rom2, sram2) = m.memory_bits();
        assert!(rom2 > 0);
        assert!(sram2 < sram);
    }
}
