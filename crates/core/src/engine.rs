//! Persistent worker pool behind the batched inference engine.
//!
//! The pre-engine harness (`yoloc-bench`'s original `run_parallel`)
//! spawned a fresh set of threads for every call. This module replaces it
//! with a *persistent* pool: [`WorkerPool::with`] spawns the workers once
//! inside a [`std::thread::scope`], hands the pool to a closure, and every
//! [`WorkerPool::run`] inside that closure reuses the same threads. Both
//! the batched pipeline engine ([`crate::pipeline::CimDeployedModel::infer_batch`])
//! and the figure-reproduction binaries in `yoloc-bench` share this one
//! implementation.
//!
//! Design constraints and how they are met:
//!
//! * **No `unsafe`.** Jobs are type-erased as `Box<dyn FnOnce() + Send +
//!   'env>` where `'env` is fixed when the pool is created, so jobs may
//!   borrow anything that outlives the [`WorkerPool::with`] call — create
//!   the model/batch first, then open the pool.
//! * **Deterministic results.** [`WorkerPool::run`] preserves input order
//!   in its output vector regardless of which worker executes which job,
//!   so a result is a pure function of the job list, never of scheduling.
//! * **No idle caller.** The submitting thread helps drain the queue, so
//!   a pool of `workers = 1` executes jobs exactly like a serial loop on
//!   the calling thread (no cross-thread handoff at all), and `workers =
//!   n` applies `n` compute lanes in total.
//!
//! # Examples
//!
//! ```
//! use yoloc_core::engine::WorkerPool;
//!
//! let inputs: Vec<u64> = (0..100).collect();
//! let squares = WorkerPool::with(4, |pool| {
//!     pool.run(inputs.iter().map(|&v| move || v * v).collect())
//! });
//! assert_eq!(squares[9], 81);
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Derives the deterministic RNG stream seed for sample `index` of a
/// batched inference with base seed `seed`.
///
/// The index is mixed through a SplitMix64-style finalizer so neighbouring
/// samples get statistically independent streams, and the mapping is pure:
/// the noise a sample sees depends only on `(seed, index)`, never on which
/// worker executes it or in what order — the root of the batched engine's
/// bit-reproducibility.
pub fn sample_stream_seed(seed: u64, index: usize) -> u64 {
    let mut z = (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    seed ^ z ^ (z >> 31)
}

/// A type-erased unit of work valid for the pool's environment lifetime.
type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

struct PoolState<'env> {
    jobs: VecDeque<Job<'env>>,
    shutdown: bool,
}

/// A persistent, scope-bound worker pool (see the [module docs](self)).
///
/// Construct one with [`WorkerPool::with`]; the pool cannot outlive that
/// call, which is what makes borrowing from the caller's stack safe
/// without `unsafe` code.
pub struct WorkerPool<'env> {
    state: Mutex<PoolState<'env>>,
    job_ready: Condvar,
    workers: usize,
}

impl<'env> WorkerPool<'env> {
    /// Runs `body` with a pool of `workers` total compute lanes (the
    /// calling thread counts as one; `workers - 1` threads are spawned).
    /// Worker threads persist across every [`WorkerPool::run`] call made
    /// inside `body` and join when `body` returns.
    ///
    /// `workers == 0` is treated as 1. Jobs submitted inside `body` may
    /// borrow any data created *before* the `with` call.
    pub fn with<R>(workers: usize, body: impl FnOnce(&WorkerPool<'env>) -> R) -> R {
        let workers = workers.max(1);
        let pool = WorkerPool {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            workers,
        };
        std::thread::scope(|s| {
            for _ in 1..workers {
                s.spawn(|| pool.worker_loop());
            }
            // Shut the workers down even if `body` unwinds — otherwise the
            // implicit join at the end of the scope would wait forever on
            // workers parked in `job_ready.wait`.
            struct Shutdown<'pool, 'env>(&'pool WorkerPool<'env>);
            impl Drop for Shutdown<'_, '_> {
                fn drop(&mut self) {
                    let mut st = self.0.state.lock().expect("pool lock");
                    st.shutdown = true;
                    drop(st);
                    self.0.job_ready.notify_all();
                }
            }
            let _shutdown = Shutdown(&pool);
            body(&pool)
        })
    }

    /// Total compute lanes (spawned workers plus the calling thread).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes `jobs` across the pool, returning their results in input
    /// order. The calling thread participates in draining the queue and
    /// blocks until every job has completed.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let slots: Arc<Vec<Mutex<Option<T>>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        // Completion is counted by a drop guard so a panicking job still
        // wakes the submitting thread (which then finds the empty result
        // slot and propagates the failure) instead of hanging it forever.
        struct Complete(Arc<(Mutex<usize>, Condvar)>);
        impl Drop for Complete {
            fn drop(&mut self) {
                let (count, cv) = &*self.0;
                *count.lock().expect("done lock") += 1;
                cv.notify_all();
            }
        }
        {
            let mut st = self.state.lock().expect("pool lock");
            for (i, job) in jobs.into_iter().enumerate() {
                let slots = Arc::clone(&slots);
                let done = Arc::clone(&done);
                st.jobs.push_back(Box::new(move || {
                    let _complete = Complete(done);
                    let value = job();
                    *slots[i].lock().expect("slot lock") = Some(value);
                }));
            }
        }
        self.job_ready.notify_all();
        // Help drain the queue from the submitting thread.
        loop {
            let job = self.state.lock().expect("pool lock").jobs.pop_front();
            match job {
                Some(job) => job(),
                None => break,
            }
        }
        // Wait for jobs picked up by other workers to finish.
        let (count, cv) = &*done;
        let mut finished = count.lock().expect("done lock");
        while *finished < n {
            finished = cv.wait(finished).expect("done lock");
        }
        drop(finished);
        slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("slot lock")
                    .take()
                    .expect("a pool job panicked on a worker thread")
            })
            .collect()
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut st = self.state.lock().expect("pool lock");
                loop {
                    if let Some(job) = st.jobs.pop_front() {
                        break Some(job);
                    }
                    if st.shutdown {
                        break None;
                    }
                    st = self.job_ready.wait(st).expect("pool lock");
                }
            };
            match job {
                Some(job) => job(),
                None => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_preserves_input_order() {
        let out = WorkerPool::with(4, |pool| {
            pool.run((0..64usize).map(|i| move || i * i).collect::<Vec<_>>())
        });
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_runs() {
        let (a, b) = WorkerPool::with(3, |pool| {
            let a = pool.run((0..10u64).map(|i| move || i + 1).collect::<Vec<_>>());
            let b = pool.run((0..10u64).map(|i| move || i * 2).collect::<Vec<_>>());
            (a, b)
        });
        assert_eq!(a, (1..=10).collect::<Vec<_>>());
        assert_eq!(b, (0..20).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_can_borrow_caller_data() {
        let data: Vec<u64> = (0..32).collect();
        let doubled = WorkerPool::with(2, |pool| {
            pool.run(data.iter().map(|v| move || v * 2).collect::<Vec<_>>())
        });
        assert_eq!(doubled[31], 62);
    }

    #[test]
    fn single_worker_runs_on_calling_thread() {
        let caller = std::thread::current().id();
        let ids = WorkerPool::with(1, |pool| {
            pool.run(
                (0..8)
                    .map(|_| || std::thread::current().id())
                    .collect::<Vec<_>>(),
            )
        });
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u8> = WorkerPool::with(2, |pool| pool.run(Vec::<fn() -> u8>::new()));
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_degrades_to_one() {
        let out = WorkerPool::with(0, |pool| {
            assert_eq!(pool.workers(), 1);
            pool.run(vec![|| 41 + 1])
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    #[should_panic]
    fn panicking_job_propagates_instead_of_hanging() {
        // Whether the failing job lands on the calling thread or a spawned
        // worker, run() must panic (empty result slot), never deadlock.
        WorkerPool::with(3, |pool| {
            pool.run(
                (0..8)
                    .map(|i| move || if i == 5 { panic!("job failed") } else { i })
                    .collect::<Vec<_>>(),
            )
        });
    }

    #[test]
    #[should_panic(expected = "body failed")]
    fn panicking_body_still_joins_workers() {
        // The shutdown drop guard must release parked workers so the
        // scope's implicit join terminates and the panic propagates.
        WorkerPool::with(3, |_pool| -> () { panic!("body failed") });
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let jobs = |n: usize| (0..40u64).map(|i| move || i.wrapping_mul(i) ^ 7).take(n);
        let serial = WorkerPool::with(1, |p| p.run(jobs(40).collect::<Vec<_>>()));
        for workers in [2, 4, 8] {
            let parallel = WorkerPool::with(workers, |p| p.run(jobs(40).collect::<Vec<_>>()));
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }
}
