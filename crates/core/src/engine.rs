//! Persistent worker pool behind the batched inference engine, plus the
//! tile-parallel [`Scheduler`] that scales a *single* inference across
//! the pool (see the [`Scheduler`] docs for its determinism contract).
//!
//! The pre-engine harness (`yoloc-bench`'s original `run_parallel`)
//! spawned a fresh set of threads for every call. This module replaces it
//! with a *persistent* pool: [`WorkerPool::with`] spawns the workers once
//! inside a [`std::thread::scope`], hands the pool to a closure, and every
//! [`WorkerPool::run`] inside that closure reuses the same threads. Both
//! the batched pipeline engine ([`crate::pipeline::CimDeployedModel::infer_batch`])
//! and the figure-reproduction binaries in `yoloc-bench` share this one
//! implementation.
//!
//! Design constraints and how they are met:
//!
//! * **No `unsafe`.** Jobs are type-erased as `Box<dyn FnOnce() + Send +
//!   'env>` where `'env` is fixed when the pool is created, so jobs may
//!   borrow anything that outlives the [`WorkerPool::with`] call — create
//!   the model/batch first, then open the pool.
//! * **Deterministic results.** [`WorkerPool::run`] preserves input order
//!   in its output vector regardless of which worker executes which job,
//!   so a result is a pure function of the job list, never of scheduling.
//! * **No idle caller.** The submitting thread helps drain the queue, so
//!   a pool of `workers = 1` executes jobs exactly like a serial loop on
//!   the calling thread (no cross-thread handoff at all), and `workers =
//!   n` applies `n` compute lanes in total.
//!
//! # Examples
//!
//! ```
//! use yoloc_core::engine::WorkerPool;
//!
//! let inputs: Vec<u64> = (0..100).collect();
//! let squares = WorkerPool::with(4, |pool| {
//!     pool.run(inputs.iter().map(|&v| move || v * v).collect())
//! });
//! assert_eq!(squares[9], 81);
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::compiler::cache::PlanCache;
use crate::compiler::schedule::{TaskGraph, TaskKind};
use crate::compiler::{
    CompileOptions, CompiledNetwork, ExecPlan, ExecutionReport, PerOpExec, PlanOp,
};
use yoloc_cim::macro_model::MvmStats;
use yoloc_models::{NetworkDesc, NetworkError};
use yoloc_tensor::Tensor;

/// Derives the deterministic RNG stream seed for sample `index` of a
/// batched inference with base seed `seed`.
///
/// The index is mixed through a SplitMix64-style finalizer so neighbouring
/// samples get statistically independent streams, and the mapping is pure:
/// the noise a sample sees depends only on `(seed, index)`, never on which
/// worker executes it or in what order — the root of the batched engine's
/// bit-reproducibility.
pub fn sample_stream_seed(seed: u64, index: usize) -> u64 {
    let mut z = (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    seed ^ z ^ (z >> 31)
}

/// A type-erased unit of work valid for the pool's environment lifetime.
type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

struct PoolState<'env> {
    jobs: VecDeque<Job<'env>>,
    shutdown: bool,
}

/// A persistent, scope-bound worker pool (see the [module docs](self)).
///
/// Construct one with [`WorkerPool::with`]; the pool cannot outlive that
/// call, which is what makes borrowing from the caller's stack safe
/// without `unsafe` code.
pub struct WorkerPool<'env> {
    state: Mutex<PoolState<'env>>,
    job_ready: Condvar,
    workers: usize,
}

impl<'env> WorkerPool<'env> {
    /// Runs `body` with a pool of `workers` total compute lanes (the
    /// calling thread counts as one; `workers - 1` threads are spawned).
    /// Worker threads persist across every [`WorkerPool::run`] call made
    /// inside `body` and join when `body` returns.
    ///
    /// `workers == 0` is treated as 1. Jobs submitted inside `body` may
    /// borrow any data created *before* the `with` call.
    pub fn with<R>(workers: usize, body: impl FnOnce(&WorkerPool<'env>) -> R) -> R {
        let workers = workers.max(1);
        let pool = WorkerPool {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            workers,
        };
        std::thread::scope(|s| {
            for _ in 1..workers {
                s.spawn(|| pool.worker_loop());
            }
            // Shut the workers down even if `body` unwinds — otherwise the
            // implicit join at the end of the scope would wait forever on
            // workers parked in `job_ready.wait`.
            struct Shutdown<'pool, 'env>(&'pool WorkerPool<'env>);
            impl Drop for Shutdown<'_, '_> {
                fn drop(&mut self) {
                    let mut st = self.0.state.lock().expect("pool lock");
                    st.shutdown = true;
                    drop(st);
                    self.0.job_ready.notify_all();
                }
            }
            let _shutdown = Shutdown(&pool);
            body(&pool)
        })
    }

    /// Total compute lanes (spawned workers plus the calling thread).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes `jobs` across the pool, returning their results in input
    /// order. The calling thread participates in draining the queue and
    /// blocks until every job has completed.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let slots: Arc<Vec<Mutex<Option<T>>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        // Completion is counted by a drop guard so a panicking job still
        // wakes the submitting thread (which then finds the empty result
        // slot and propagates the failure) instead of hanging it forever.
        struct Complete(Arc<(Mutex<usize>, Condvar)>);
        impl Drop for Complete {
            fn drop(&mut self) {
                let (count, cv) = &*self.0;
                *count.lock().expect("done lock") += 1;
                cv.notify_all();
            }
        }
        {
            let mut st = self.state.lock().expect("pool lock");
            for (i, job) in jobs.into_iter().enumerate() {
                let slots = Arc::clone(&slots);
                let done = Arc::clone(&done);
                st.jobs.push_back(Box::new(move || {
                    let _complete = Complete(done);
                    let value = job();
                    *slots[i].lock().expect("slot lock") = Some(value);
                }));
            }
        }
        self.job_ready.notify_all();
        // Help drain the queue from the submitting thread.
        loop {
            let job = self.state.lock().expect("pool lock").jobs.pop_front();
            match job {
                Some(job) => job(),
                None => break,
            }
        }
        // Wait for jobs picked up by other workers to finish.
        let (count, cv) = &*done;
        let mut finished = count.lock().expect("done lock");
        while *finished < n {
            finished = cv.wait(finished).expect("done lock");
        }
        drop(finished);
        slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("slot lock")
                    .take()
                    .expect("a pool job panicked on a worker thread")
            })
            .collect()
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut st = self.state.lock().expect("pool lock");
                loop {
                    if let Some(job) = st.jobs.pop_front() {
                        break Some(job);
                    }
                    if st.shutdown {
                        break None;
                    }
                    st = self.job_ready.wait(st).expect("pool lock");
                }
            };
            match job {
                Some(job) => job(),
                None => return,
            }
        }
    }
}

/// Derives the deterministic RNG stream seed for tile `tile` of scheduler
/// task `task`: the tile-level counterpart of [`sample_stream_seed`], so a
/// tile's noise stream depends only on `(seed, task, tile)` — never on
/// which worker executes it or in what order.
pub fn tile_stream_seed(seed: u64, task: usize, tile: usize) -> u64 {
    sample_stream_seed(sample_stream_seed(seed, task), tile)
}

/// What one scheduler job returns.
enum JobOut {
    /// A conv tile: `[position][channel]` values plus the tile's stats.
    Tile(Vec<f32>, MvmStats),
    /// A whole op executed through the serial oracle implementation.
    Op(Tensor, PerOpExec),
}

/// Per-wave bookkeeping for one scheduled task.
struct Pending {
    task: usize,
    jobs: usize,
    /// Conv-tile assembly target shape (`None` for single-job tasks and
    /// the job-less ReBranch combine).
    out_shape: Option<[usize; 4]>,
    /// Running-activation input bits (result-producing CiM tasks only).
    input_bits: u64,
}

/// The tile-parallel scheduler: executes a compiled [`ExecPlan`] by
/// expanding it into the task graph of [`crate::compiler::schedule`],
/// partitioning each CiM op into its placement-derived position tiles, and
/// fanning every ready task's tiles across a [`WorkerPool`] behind a
/// dependency-aware ready queue.
///
/// Determinism contract (pinned by the parity suite):
///
/// * results are **bit-identical for any worker count** — tile streams
///   depend only on `(seed, task, tile)` and assembly follows task/tile
///   order, never completion order;
/// * on the noiseless datapath the logits, stats *and* full
///   [`ExecutionReport`] are **bit-identical to the serial
///   [`ExecPlan::execute`]** on the same plan: both record the same per-op
///   measurements and reduce them through the same `finalize`;
/// * intermediate activations are dropped the moment their last reader
///   completes (reference counting over the task graph — the same live
///   ranges the buffer-liveness pass plans its arena from), so a deep
///   plan's footprint tracks the planned peak instead of growing with
///   depth.
pub struct Scheduler<'p> {
    plan: &'p ExecPlan,
    graph: TaskGraph,
}

impl<'p> Scheduler<'p> {
    /// Builds the task graph for `plan`.
    pub fn new(plan: &'p ExecPlan) -> Self {
        Scheduler {
            plan,
            graph: TaskGraph::build(plan),
        }
    }

    /// Tasks in the schedule (digital ops count one; ReBranch groups
    /// expand to five).
    pub fn tasks(&self) -> usize {
        self.graph.tasks.len()
    }

    /// Runs one inference through the tile-parallel schedule.
    ///
    /// # Panics
    ///
    /// Panics if a pool job panics (propagated by [`WorkerPool::run`]).
    #[must_use = "dropping the result discards the logits and the measured execution report"]
    pub fn infer<'env>(
        &self,
        x: &Tensor,
        seed: u64,
        pool: &WorkerPool<'env>,
    ) -> (Tensor, ExecutionReport)
    where
        'p: 'env,
    {
        let plan = self.plan;
        let n_ops = plan.len();
        if n_ops == 0 {
            let report = plan.finalize(x, x, &[]);
            return (x.clone(), report);
        }
        let ab = plan.memory().act_bits as u64;
        let n_tasks = self.graph.tasks.len();
        let succ = self.graph.successors();
        let mut indeg = self.graph.indegrees();
        // How many later tasks read each task's value (+1 keeps the final
        // output alive); values are evicted the moment this hits zero —
        // the run-time half of the planned-arena discipline.
        let mut uses = vec![0usize; n_tasks];
        for t in &self.graph.tasks {
            for &d in &t.deps {
                uses[d] += 1;
            }
        }
        let final_task = self.graph.result_task_of_op[n_ops - 1];
        uses[final_task] += 1;
        let mut values: Vec<Option<Arc<Tensor>>> = (0..n_tasks).map(|_| None).collect();
        let mut per_op: Vec<PerOpExec> = (0..n_ops).map(|_| PerOpExec::default()).collect();
        let mut ready: Vec<usize> = (0..n_tasks).filter(|&t| indeg[t] == 0).collect();
        // The network input, cloned once and shared by reference with
        // every job that reads it.
        let x_shared = Arc::new(x.clone());
        // Resolves the running-activation input of a task (the network
        // input for op 0).
        let input_of =
            |task: usize, values: &[Option<Arc<Tensor>>], graph: &TaskGraph| -> Arc<Tensor> {
                let t = &graph.tasks[task];
                let producer = match t.kind {
                    TaskKind::Whole | TaskKind::RbTrunk | TaskKind::RbCompress => {
                        match t.op.checked_sub(1) {
                            None => return Arc::clone(&x_shared),
                            Some(p) => graph.result_task_of_op[p],
                        }
                    }
                    // Stage chain inside a ReBranch group.
                    TaskKind::RbRes | TaskKind::RbDecompress => t.deps[0],
                    TaskKind::RbCombine => unreachable!("combine has no tile input"),
                };
                Arc::clone(values[producer].as_ref().expect("producer value live"))
            };
        while !ready.is_empty() {
            // One wave: everything currently ready, in task order.
            ready.sort_unstable();
            let wave: Vec<usize> = std::mem::take(&mut ready);
            let mut jobs: Vec<Box<dyn FnOnce() -> JobOut + Send + 'env>> = Vec::new();
            let mut pending: Vec<Pending> = Vec::with_capacity(wave.len());
            for &t in &wave {
                let task = &self.graph.tasks[t];
                let op_idx = task.op;
                // The conv a tiled task drives, if it is a tiled task.
                let tiled_conv = match (&plan.ops[op_idx], task.kind) {
                    (PlanOp::Conv { conv, .. }, TaskKind::Whole) => Some(conv),
                    (PlanOp::ReBranch { trunk, .. }, TaskKind::RbTrunk) => Some(trunk),
                    (PlanOp::ReBranch { compress, .. }, TaskKind::RbCompress) => Some(compress),
                    (PlanOp::ReBranch { res_conv, .. }, TaskKind::RbRes) => Some(res_conv),
                    (PlanOp::ReBranch { decompress, .. }, TaskKind::RbDecompress) => {
                        Some(decompress)
                    }
                    _ => None,
                };
                if let Some(conv) = tiled_conv {
                    let input = input_of(t, &values, &self.graph);
                    let (h, w) = (input.shape()[2], input.shape()[3]);
                    let (oh, ow) = conv.output_hw(h, w);
                    let batch = input.shape()[0];
                    let cols = Arc::new(conv.lower(&input));
                    let ranges = conv.tile_ranges(cols.shape()[1]);
                    let input_bits = input.data().len() as u64 * ab;
                    pending.push(Pending {
                        task: t,
                        jobs: ranges.len(),
                        out_shape: Some([batch, conv.out_channels(), oh, ow]),
                        input_bits,
                    });
                    for (ti, (lo, hi)) in ranges.into_iter().enumerate() {
                        let cols = Arc::clone(&cols);
                        jobs.push(Box::new(move || {
                            let mut rng = StdRng::seed_from_u64(tile_stream_seed(seed, t, ti));
                            // Draw kernel staging (codes, accumulators,
                            // bit-plane masks) from the plan's arena pool
                            // so repeated tile jobs reuse warmed buffers.
                            let mut arena = plan.take_arena();
                            let (vals, stats) = conv.forward_tile_with(
                                cols.as_ref(),
                                lo,
                                hi,
                                &mut arena.cim,
                                &mut rng,
                            );
                            plan.give_arena(arena);
                            JobOut::Tile(vals, stats)
                        }));
                    }
                } else if task.kind == TaskKind::RbCombine {
                    // Assembly-only: merged on the submitting thread.
                    pending.push(Pending {
                        task: t,
                        jobs: 0,
                        out_shape: None,
                        input_bits: 0,
                    });
                } else {
                    // Digital op, linear or projected residual: one job
                    // through the serial-oracle op implementation.
                    let input = input_of(t, &values, &self.graph);
                    // Snapshot of the source outputs this op reads.
                    let mut outputs: Vec<Option<Tensor>> = vec![None; n_ops];
                    for src in plan.ops[op_idx].sources() {
                        if let crate::compiler::OpSource::Op(j) = src {
                            let v = values[self.graph.result_task_of_op[j]]
                                .as_ref()
                                .expect("source value live");
                            outputs[j] = Some(v.as_ref().clone());
                        }
                    }
                    let x_job = Arc::clone(&x_shared);
                    pending.push(Pending {
                        task: t,
                        jobs: 1,
                        out_shape: None,
                        input_bits: 0,
                    });
                    jobs.push(Box::new(move || {
                        let mut rng = StdRng::seed_from_u64(tile_stream_seed(seed, t, 0));
                        let (out, rec) = plan.run_op_serial(
                            op_idx,
                            input.as_ref(),
                            x_job.as_ref(),
                            &outputs,
                            &mut rng,
                        );
                        JobOut::Op(out, rec)
                    }));
                }
            }
            let mut results = pool.run(jobs).into_iter();
            // Assemble in task order, tiles in range order — the exact
            // reduction the serial interpreter performs.
            for p in &pending {
                let t = p.task;
                let task = &self.graph.tasks[t];
                let op_idx = task.op;
                let taken: Vec<JobOut> = (0..p.jobs)
                    .map(|_| results.next().expect("one result per job"))
                    .collect();
                let out = if task.kind == TaskKind::RbCombine {
                    let trunk: &Tensor = values[task.deps[0]].as_ref().expect("trunk live");
                    let dec: &Tensor = values[task.deps[1]].as_ref().expect("decompress live");
                    let y = trunk.add(dec);
                    let epilogue = plan.ops[op_idx].epilogue().to_vec();
                    let resolve = |j: usize| -> Tensor {
                        values[self.graph.result_task_of_op[j]]
                            .as_ref()
                            .expect("source value live")
                            .as_ref()
                            .clone()
                    };
                    let rec = &mut per_op[op_idx];
                    let y = plan.apply_epilogue(&epilogue, y, op_idx, x, &resolve, rec);
                    rec.out_bits = y.data().len() as u64 * ab;
                    y
                } else if let Some(shape) = p.out_shape {
                    let conv = match (&plan.ops[op_idx], task.kind) {
                        (PlanOp::Conv { conv, .. }, TaskKind::Whole) => conv,
                        (PlanOp::ReBranch { trunk, .. }, TaskKind::RbTrunk) => trunk,
                        (PlanOp::ReBranch { compress, .. }, TaskKind::RbCompress) => compress,
                        (PlanOp::ReBranch { res_conv, .. }, TaskKind::RbRes) => res_conv,
                        (PlanOp::ReBranch { decompress, .. }, TaskKind::RbDecompress) => decompress,
                        _ => unreachable!("tile results imply a tiled conv"),
                    };
                    let mut y = Tensor::zeros(&shape);
                    let mut stats = MvmStats::default();
                    let mut lo = 0usize;
                    for r in &taken {
                        let JobOut::Tile(vals, s) = r else {
                            unreachable!("tile job order")
                        };
                        stats.merge(s);
                        conv.scatter_tile(&mut y, lo, vals);
                        lo += vals.len() / conv.out_channels().max(1);
                    }
                    // Fold the stage stats exactly where the serial walk
                    // folds them.
                    let is_conv_whole = matches!(&plan.ops[op_idx], PlanOp::Conv { .. })
                        && task.kind == TaskKind::Whole;
                    {
                        let rec = &mut per_op[op_idx];
                        match (&plan.ops[op_idx], task.kind) {
                            (PlanOp::Conv { domain, .. }, TaskKind::Whole) => {
                                rec.in_bits = p.input_bits;
                                if op_idx > 0 && plan.chip_of[op_idx] != plan.chip_of[op_idx - 1] {
                                    rec.cross_bits += rec.in_bits;
                                }
                                rec.tiles = p.jobs;
                                rec.add(*domain, &stats);
                            }
                            (_, TaskKind::RbTrunk) => {
                                rec.in_bits = p.input_bits;
                                if op_idx > 0 && plan.chip_of[op_idx] != plan.chip_of[op_idx - 1] {
                                    rec.cross_bits += rec.in_bits;
                                }
                                rec.tiles = p.jobs;
                                rec.rom.merge(&stats);
                            }
                            (_, TaskKind::RbCompress) => rec.rom.merge(&stats),
                            (_, TaskKind::RbRes) => rec.sram.merge(&stats),
                            (_, TaskKind::RbDecompress) => rec.rom.merge(&stats),
                            _ => unreachable!(),
                        }
                    }
                    // A plain conv's epilogue applies to its own
                    // (assembled) output.
                    if is_conv_whole {
                        let epilogue = plan.ops[op_idx].epilogue().to_vec();
                        let resolve = |j: usize| -> Tensor {
                            values[self.graph.result_task_of_op[j]]
                                .as_ref()
                                .expect("source value live")
                                .as_ref()
                                .clone()
                        };
                        let rec = &mut per_op[op_idx];
                        let y2 = plan.apply_epilogue(&epilogue, y, op_idx, x, &resolve, rec);
                        rec.out_bits = y2.data().len() as u64 * ab;
                        y2
                    } else {
                        y
                    }
                } else {
                    let Some(JobOut::Op(out, rec)) = taken.into_iter().next() else {
                        unreachable!("single-job task returns an op result")
                    };
                    per_op[op_idx] = rec;
                    out
                };
                values[t] = Some(Arc::new(out));
                // This task consumed its dependencies: release dead ones.
                for &d in &self.graph.tasks[t].deps {
                    uses[d] -= 1;
                    if uses[d] == 0 {
                        values[d] = None;
                    }
                }
                for &s in &succ[t] {
                    indeg[s] -= 1;
                    if indeg[s] == 0 {
                        ready.push(s);
                    }
                }
            }
        }
        let output = values[final_task]
            .as_ref()
            .expect("final output retained")
            .as_ref()
            .clone();
        let report = plan.finalize(x, &output, &per_op);
        (output, report)
    }
}

/// Cache-aware deploy front end for multi-model serving: every deploy
/// routes through a shared [`PlanCache`], so re-deploying a network this
/// process (or any earlier process that populated the cache directory)
/// already compiled costs a plan-document read instead of a full
/// compile — the warm path performs zero recompilation, asserted via
/// [`crate::compiler::compile_count`] in the round-trip suite and the
/// bench schema gate.
///
/// # Examples
///
/// ```
/// use yoloc_core::compiler::{cache::PlanCache, CompileOptions};
/// use yoloc_core::engine::ModelServer;
/// use yoloc_models::zoo;
///
/// let server = ModelServer::with_cache(PlanCache::in_memory());
/// let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
/// let _cold = server.deploy(&desc, 7, CompileOptions::paper_default())?;
/// let _warm = server.deploy(&desc, 7, CompileOptions::paper_default())?;
/// assert_eq!(server.cache().hits(), 1);
/// # Ok::<(), yoloc_models::NetworkError>(())
/// ```
#[derive(Debug, Default)]
pub struct ModelServer {
    cache: PlanCache,
}

impl ModelServer {
    /// A server over the default on-disk cache location (see
    /// [`PlanCache::new`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// A server over an explicit cache (in-memory or custom directory).
    pub fn with_cache(cache: PlanCache) -> Self {
        ModelServer { cache }
    }

    /// The underlying cache (hit/miss counters for reporting).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Deploys `desc` with deterministic random weights through the
    /// cache: hits rebuild the stored plan bit-identically, misses
    /// compile and populate the cache.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the description is inconsistent.
    pub fn deploy(
        &self,
        desc: &NetworkDesc,
        seed: u64,
        opts: CompileOptions,
    ) -> Result<CompiledNetwork, NetworkError> {
        self.cache.compile_random(desc, seed, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_preserves_input_order() {
        let out = WorkerPool::with(4, |pool| {
            pool.run((0..64usize).map(|i| move || i * i).collect::<Vec<_>>())
        });
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_runs() {
        let (a, b) = WorkerPool::with(3, |pool| {
            let a = pool.run((0..10u64).map(|i| move || i + 1).collect::<Vec<_>>());
            let b = pool.run((0..10u64).map(|i| move || i * 2).collect::<Vec<_>>());
            (a, b)
        });
        assert_eq!(a, (1..=10).collect::<Vec<_>>());
        assert_eq!(b, (0..20).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_can_borrow_caller_data() {
        let data: Vec<u64> = (0..32).collect();
        let doubled = WorkerPool::with(2, |pool| {
            pool.run(data.iter().map(|v| move || v * 2).collect::<Vec<_>>())
        });
        assert_eq!(doubled[31], 62);
    }

    #[test]
    fn single_worker_runs_on_calling_thread() {
        let caller = std::thread::current().id();
        let ids = WorkerPool::with(1, |pool| {
            pool.run(
                (0..8)
                    .map(|_| || std::thread::current().id())
                    .collect::<Vec<_>>(),
            )
        });
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u8> = WorkerPool::with(2, |pool| pool.run(Vec::<fn() -> u8>::new()));
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_degrades_to_one() {
        let out = WorkerPool::with(0, |pool| {
            assert_eq!(pool.workers(), 1);
            pool.run(vec![|| 41 + 1])
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    #[should_panic]
    fn panicking_job_propagates_instead_of_hanging() {
        // Whether the failing job lands on the calling thread or a spawned
        // worker, run() must panic (empty result slot), never deadlock.
        WorkerPool::with(3, |pool| {
            pool.run(
                (0..8)
                    .map(|i| move || if i == 5 { panic!("job failed") } else { i })
                    .collect::<Vec<_>>(),
            )
        });
    }

    #[test]
    #[should_panic(expected = "body failed")]
    fn panicking_body_still_joins_workers() {
        // The shutdown drop guard must release parked workers so the
        // scope's implicit join terminates and the panic propagates.
        WorkerPool::with(3, |_pool| -> () { panic!("body failed") });
    }

    #[test]
    fn scheduler_bit_identical_to_serial_interpreter() {
        // THE parity pin of the tile-parallel scheduler: same plan, same
        // seed — the full ExecutionReport (logits, stats, energy, per-op
        // latency, traffic) must equal the serial interpreter's bit for
        // bit, at every worker count.
        use crate::compiler::{CompileOptions, CompiledNetwork};
        use yoloc_models::zoo;
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let net =
            CompiledNetwork::compile_random(&desc, 7, CompileOptions::paper_default()).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let x = Tensor::rand_uniform(&[1, 1, 16, 16], 0.0, 1.0, &mut rng);
        let (serial, serial_report) = net.infer(&x, &mut rng);
        for workers in [1, 2, 4] {
            let (tiled, report) = WorkerPool::with(workers, |pool| net.infer_tiled(&x, 5, pool));
            assert_eq!(serial.data(), tiled.data(), "workers = {workers}");
            assert_eq!(serial_report, report, "workers = {workers}");
        }
    }

    #[test]
    fn scheduler_handles_residual_and_passthrough_graphs() {
        use crate::compiler::{CompileOptions, CompiledNetwork};
        use yoloc_models::zoo;
        for desc in [
            zoo::scaled(&zoo::resnet18(3), 16, (32, 32)),
            zoo::scaled(&zoo::yolo_v2(4, 2), 32, (64, 64)),
        ] {
            let net = CompiledNetwork::compile_random(&desc, 17, CompileOptions::paper_default())
                .unwrap();
            let mut rng = StdRng::seed_from_u64(18);
            let (c, h, w) = net.input_shape();
            let x = Tensor::rand_uniform(&[1, c, h, w], 0.0, 1.0, &mut rng);
            let (serial, serial_report) = net.infer(&x, &mut rng);
            let (tiled, report) = WorkerPool::with(4, |pool| net.infer_tiled(&x, 5, pool));
            assert_eq!(serial.data(), tiled.data(), "{}", desc.name);
            assert_eq!(serial_report, report, "{}", desc.name);
        }
    }

    #[test]
    fn scheduler_reports_arena_and_fusion_savings() {
        use crate::compiler::{CompileOptions, CompiledNetwork, PassPipeline};
        use yoloc_models::zoo;
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let fused =
            CompiledNetwork::compile_random(&desc, 7, CompileOptions::paper_default()).unwrap();
        let mut raw_opts = CompileOptions::paper_default();
        raw_opts.passes = PassPipeline::none();
        let raw = CompiledNetwork::compile_random(&desc, 7, raw_opts).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::rand_uniform(&[1, 1, 16, 16], 0.0, 1.0, &mut rng);
        let (y_fused, r_fused) = WorkerPool::with(2, |pool| fused.infer_tiled(&x, 3, pool));
        let mut rng = StdRng::seed_from_u64(9);
        let x2 = Tensor::rand_uniform(&[1, 1, 16, 16], 0.0, 1.0, &mut rng);
        let (y_raw, r_raw) = raw.infer(&x2, &mut rng);
        // Fusion is arithmetic-transparent: identical logits and stats.
        assert_eq!(y_fused.data(), y_raw.data());
        assert_eq!(r_fused.rom, r_raw.rom);
        assert_eq!(r_fused.sram, r_raw.sram);
        // And it moves strictly less traffic through the hierarchy.
        assert!(r_fused.buffer_traffic_bits < r_raw.buffer_traffic_bits);
        assert!(r_fused.energy.buffer_uj < r_raw.energy.buffer_uj);
        // The planned arena beats per-op allocation.
        assert!(r_fused.peak_arena_bytes < r_fused.naive_arena_bytes);
        assert_eq!(r_raw.peak_arena_bytes, r_raw.naive_arena_bytes);
    }

    #[test]
    fn sharded_plan_pays_the_chiplet_link() {
        use crate::compiler::{CompileOptions, CompiledNetwork};
        use crate::mapping::MappingStrategy;
        use yoloc_models::zoo;
        let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
        let mut opts = CompileOptions::paper_default();
        opts.mapping = MappingStrategy::Sharded { chips: 4 };
        let sharded = CompiledNetwork::compile_random(&desc, 7, opts).unwrap();
        let single =
            CompiledNetwork::compile_random(&desc, 7, CompileOptions::paper_default()).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let x = Tensor::rand_uniform(&[1, 1, 16, 16], 0.0, 1.0, &mut rng);
        let (y_s, r_s) = sharded.infer(&x, &mut rng);
        let (y_1, r_1) = single.infer(&x, &mut rng);
        // Sharding is functionally transparent...
        assert_eq!(y_s.data(), y_1.data());
        // ...but the shard topology shows up in traffic, energy, latency.
        assert!(r_s.link_traffic_bits > 0);
        assert_eq!(r_1.link_traffic_bits, 0);
        assert!(r_s.energy.link_uj > 0.0);
        assert_eq!(r_1.energy.link_uj, 0.0);
        assert!(r_s.latency_ns > r_1.latency_ns);
        assert!(sharded.plan().chips() == 4);
        // Scheduler parity holds on sharded plans too.
        let (y_t, r_t) = WorkerPool::with(3, |pool| sharded.infer_tiled(&x, 11, pool));
        let mut rng = StdRng::seed_from_u64(10);
        let x3 = Tensor::rand_uniform(&[1, 1, 16, 16], 0.0, 1.0, &mut rng);
        let (y_s2, r_s2) = sharded.infer(&x3, &mut rng);
        assert_eq!(y_t.data(), y_s2.data());
        assert_eq!(r_t, r_s2);
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let jobs = |n: usize| (0..40u64).map(|i| move || i.wrapping_mul(i) ^ 7).take(n);
        let serial = WorkerPool::with(1, |p| p.run(jobs(40).collect::<Vec<_>>()));
        for workers in [2, 4, 8] {
            let parallel = WorkerPool::with(workers, |p| p.run(jobs(40).collect::<Vec<_>>()));
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }
}
