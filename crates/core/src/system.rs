//! System-level evaluation of the three Fig. 13 configurations.
//!
//! * **YOLoC** (Fig. 13a): trunk weights resident in ROM-CiM, ReBranch
//!   residual convs + prediction head in SRAM-CiM, no per-inference DRAM
//!   weight traffic, layer-pipelined execution (intermediate maps stream
//!   through line buffers).
//! * **Single-chip SRAM-CiM** (Fig. 13b): iso-area chip; weights that do
//!   not fit on chip stream from DRAM every inference, non-resident layers
//!   break the pipeline and materialize large feature maps through DRAM,
//!   and the chip stalls on DRAM bandwidth.
//! * **SRAM-CiM chiplets** (Fig. 13c): enough chips to hold all weights,
//!   no DRAM, but intermediate maps cross SIMBA-class chip-to-chip links.
//!
//! Energy/latency/area roll up into [`SystemReport`] (Fig. 14a-c). All
//! calibration constants live in [`SystemParams`] with documented
//! provenance; see `EXPERIMENTS.md` for measured-vs-paper numbers.

use serde::{Deserialize, Serialize};

use crate::mapping::map_network;
use crate::rebranch::ReBranchRatios;
use yoloc_cim::MacroParams;
use yoloc_memory::{ChipletLink, DramModel, SramBuffer};
use yoloc_models::{LayerSpec, NetworkDesc, NetworkError};

/// Calibration constants of the system model.
///
/// # Examples
///
/// ```
/// use yoloc_core::system::{evaluate, SystemKind, SystemParams};
///
/// let p = SystemParams::paper_default();
/// let yolo = yoloc_models::zoo::yolo_v2(20, 5);
/// let report = evaluate(&yolo, SystemKind::Yoloc, &p)?;
/// // All YOLO weights live on chip: no per-inference DRAM traffic.
/// assert_eq!(report.dram_traffic_bits, 0);
/// # Ok::<(), yoloc_models::NetworkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SystemParams {
    /// ROM-CiM macro (Table I).
    pub rom: MacroParams,
    /// SRAM-CiM macro (ISSCC'21 \[3\] class).
    pub sram: MacroParams,
    /// Off-chip DRAM interface.
    pub dram: DramModel,
    /// Chip-to-chip link (SIMBA \[25\]).
    pub link: ChipletLink,
    /// On-chip activation cache capacity in bits (paper Fig. 9 "cache").
    pub act_buffer_bits: u64,
    /// Activation precision.
    pub act_bits: u8,
    /// ReBranch ratios for the YOLoC configuration.
    pub rebranch: ReBranchRatios,
    /// System energy overhead factor on CiM compute (controller, clock
    /// tree, NoC of Fig. 9); 1.0 = macro-only energy.
    pub peripheral_overhead: f64,
    /// Power burned while the chip waits on DRAM streaming (clock tree,
    /// PLL, SRAM leakage of a cm²-class 28 nm chip: ~1-2 W active-idle),
    /// in watts.
    pub idle_power_w: f64,
    /// Fraction of the ReBranch branch-path latency that is *not* hidden
    /// behind trunk computation (merge and driver sharing).
    pub branch_overlap: f64,
}

impl SystemParams {
    /// Defaults calibrated against the paper's headline results; every
    /// constant is physically motivated (see field docs and DESIGN.md §2).
    pub fn paper_default() -> Self {
        SystemParams {
            rom: MacroParams::rom_paper(),
            sram: MacroParams::sram_paper(),
            dram: DramModel::lpddr4(),
            link: ChipletLink::simba(),
            act_buffer_bits: 2 * 1024 * 1024, // 2 Mb cache
            act_bits: 8,
            rebranch: ReBranchRatios::paper_default(),
            peripheral_overhead: 1.3,
            idle_power_w: 1.2,
            branch_overlap: 0.65,
        }
    }
}

/// Which Fig. 13 configuration to evaluate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SystemKind {
    /// ReBranch-assisted ROM-CiM (proposed).
    Yoloc,
    /// Single SRAM-CiM chip. `cim_area_mm2 = None` sizes it iso-area to
    /// the YOLoC chip evaluated on the same model.
    SramSingleChip {
        /// CiM area budget; `None` = iso-area with YOLoC.
        cim_area_mm2: Option<f64>,
    },
    /// SRAM-CiM chiplet system holding all weights. `chips = None` sizes
    /// chips to the YOLoC chip area.
    SramChiplet {
        /// Number of chiplets; `None` = derived from capacity.
        chips: Option<usize>,
    },
}

/// Energy breakdown per inference, µJ.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// CiM array MAC energy.
    pub cim_uj: f64,
    /// Controller/clock/NoC overhead on compute.
    pub peripheral_uj: f64,
    /// Activation buffer traffic.
    pub buffer_uj: f64,
    /// On-chip mesh NoC traffic between CiM macro clusters and the cache
    /// (accounted live by the graph executor; the static model folds it
    /// into `peripheral_uj`).
    pub noc_uj: f64,
    /// DRAM transfer energy (weights + materialized activations).
    pub dram_uj: f64,
    /// SRAM-CiM array write energy for streamed weights.
    pub write_uj: f64,
    /// Idle/stall energy while waiting on DRAM bandwidth.
    pub stall_uj: f64,
    /// Chiplet interconnect energy.
    pub link_uj: f64,
}

impl EnergyBreakdown {
    /// Adds another breakdown component-wise (used to reduce per-sample
    /// breakdowns from the batched executor). Lives next to the struct so
    /// adding a field here forces the reduction to be updated too.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        let EnergyBreakdown {
            cim_uj,
            peripheral_uj,
            buffer_uj,
            noc_uj,
            dram_uj,
            write_uj,
            stall_uj,
            link_uj,
        } = other;
        self.cim_uj += cim_uj;
        self.peripheral_uj += peripheral_uj;
        self.buffer_uj += buffer_uj;
        self.noc_uj += noc_uj;
        self.dram_uj += dram_uj;
        self.write_uj += write_uj;
        self.stall_uj += stall_uj;
        self.link_uj += link_uj;
    }

    /// Total energy per inference, µJ.
    #[must_use]
    pub fn total_uj(&self) -> f64 {
        self.cim_uj
            + self.peripheral_uj
            + self.buffer_uj
            + self.noc_uj
            + self.dram_uj
            + self.write_uj
            + self.stall_uj
            + self.link_uj
    }

    /// The "DRAM" share of Fig. 14(c) (transfer + write + stall).
    #[must_use]
    pub fn dram_share(&self) -> f64 {
        let t = self.total_uj();
        if t == 0.0 {
            0.0
        } else {
            (self.dram_uj + self.write_uj + self.stall_uj) / t
        }
    }
}

/// Area breakdown, mm² (Fig. 14b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// ROM-CiM cell arrays.
    pub rom_array_mm2: f64,
    /// SRAM-CiM cell arrays.
    pub sram_array_mm2: f64,
    /// Column ADCs.
    pub adc_mm2: f64,
    /// Word-line drivers and R/W interface.
    pub driver_mm2: f64,
    /// Control, shift-&-add and other peripherals.
    pub ctrl_mm2: f64,
    /// Activation cache.
    pub buffer_mm2: f64,
}

impl AreaBreakdown {
    /// Total chip (or chip-set) area, mm².
    #[must_use]
    pub fn total_mm2(&self) -> f64 {
        self.rom_array_mm2
            + self.sram_array_mm2
            + self.adc_mm2
            + self.driver_mm2
            + self.ctrl_mm2
            + self.buffer_mm2
    }
}

/// Full evaluation result for one (model, configuration) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Configuration label.
    pub system: String,
    /// Model name.
    pub model: String,
    /// Area breakdown.
    pub area: AreaBreakdown,
    /// Per-inference energy breakdown.
    pub energy: EnergyBreakdown,
    /// Per-inference latency, ms.
    pub latency_ms: f64,
    /// Operations per inference (2 x MACs).
    pub ops: u64,
    /// System energy efficiency, TOPS/W.
    pub energy_eff_tops_w: f64,
    /// DRAM traffic per inference, bits.
    pub dram_traffic_bits: u64,
    /// Chiplet link traffic per inference, bits.
    pub link_traffic_bits: u64,
}

/// Per-CiM-layer accounting extracted from the IR.
struct CimLayer {
    w_bits: u64,
    macs: u64,
    in_bits: u64,
    out_bits: u64,
    /// Branch bits if ReBranch-wrapped: (rom extra, sram res-conv).
    branch: Option<(u64, u64)>,
    is_head: bool,
}

fn collect_layers(desc: &NetworkDesc, p: &SystemParams) -> Result<Vec<CimLayer>, NetworkError> {
    let reports = desc.analyze()?;
    let ab = p.act_bits as u64;
    let wb = 8u64;
    let mut layers = Vec::new();
    for (i, r) in reports.iter().enumerate() {
        let Some(m) = r.lowered else { continue };
        let (d, u) = (p.rebranch.d as u64, p.rebranch.u as u64);
        // Branch geometry needs the raw conv spec (channel counts).
        let branch = match &desc.layers[r.index] {
            LayerSpec::Conv {
                in_ch,
                out_ch,
                kernel,
                ..
            } if *kernel > 1 => {
                let (n, mm, k) = (*in_ch as u64, *out_ch as u64, *kernel as u64);
                let rom_extra = (n * (n / d).max(1) + (mm / u).max(1) * mm) * wb;
                let sram = ((n / d).max(1) * (mm / u).max(1) * k * k) * wb;
                Some((rom_extra, sram))
            }
            _ => None,
        };
        let _ = i;
        layers.push(CimLayer {
            w_bits: (m.ins * m.outs) as u64 * wb,
            macs: r.macs,
            in_bits: (r.in_shape.0 * r.in_shape.1 * r.in_shape.2) as u64 * ab,
            out_bits: (r.out_shape.0 * r.out_shape.1 * r.out_shape.2) as u64 * ab,
            branch,
            is_head: false,
        });
    }
    if let Some(last) = layers.last_mut() {
        // The prediction layer stays trainable in SRAM-CiM (Fig. 9).
        last.is_head = true;
        last.branch = None;
    }
    Ok(layers)
}

fn pj_per_op(params: &MacroParams) -> f64 {
    // TOPS/W == OP/pJ, so energy per op is the reciprocal.
    1.0 / params.spec().energy_efficiency_tops_w
}

/// Splits a CiM area into the Fig. 14(b) components, pro-rata to the
/// macro's internal geometry.
fn macro_area_split(bits: u64, params: &MacroParams) -> (f64, f64, f64, f64) {
    let subarrays = (bits as f64 / params.subarray_bits() as f64).ceil();
    let cells = bits as f64 * params.cell.area_um2() / 1e6;
    let adc = subarrays * params.adcs_per_subarray as f64 * params.a_adc_um2 / 1e6;
    let driver = subarrays * params.rows as f64 * params.a_driver_um2 / 1e6;
    let ctrl = subarrays * params.a_ctrl_um2 / 1e6;
    (cells, adc, driver, ctrl)
}

/// Evaluates a model under a system configuration.
///
/// # Errors
///
/// Returns [`NetworkError`] if the model description is inconsistent.
#[must_use = "dropping the result discards the evaluated system report"]
pub fn evaluate(
    desc: &NetworkDesc,
    kind: SystemKind,
    p: &SystemParams,
) -> Result<SystemReport, NetworkError> {
    let layers = collect_layers(desc, p)?;
    let total_macs: u64 = layers.iter().map(|l| l.macs).sum();
    let ops = 2 * total_macs;
    let buffer = SramBuffer::new_28nm(p.act_buffer_bits);
    match kind {
        SystemKind::Yoloc => {
            let mut rom_bits = 0u64;
            let mut sram_bits = 0u64;
            let mut branch_macs = 0u64;
            for l in &layers {
                if l.is_head {
                    sram_bits += l.w_bits;
                } else {
                    rom_bits += l.w_bits;
                    if let Some((rom_extra, sram)) = l.branch {
                        rom_bits += rom_extra;
                        sram_bits += sram;
                        // Branch MACs scale like its parameter share.
                        let ratio = (rom_extra + sram) as f64 / l.w_bits as f64;
                        branch_macs += (l.macs as f64 * ratio) as u64;
                    }
                }
            }
            let head_macs: u64 = layers.iter().filter(|l| l.is_head).map(|l| l.macs).sum();
            let trunk_macs = total_macs - head_macs;

            // Energy.
            let cim_pj = 2.0
                * (trunk_macs as f64 * pj_per_op(&p.rom)
                    + (branch_macs + head_macs) as f64 * pj_per_op(&p.sram));
            let buffer_pj: f64 = layers
                .iter()
                .map(|l| buffer.access_energy_pj(2 * l.out_bits))
                .sum();
            let energy = EnergyBreakdown {
                cim_uj: cim_pj / 1e6,
                peripheral_uj: cim_pj * (p.peripheral_overhead - 1.0) / 1e6,
                buffer_uj: buffer_pj / 1e6,
                ..Default::default()
            };

            // Area: map trunk onto ROM macros, branch + head onto SRAM.
            let mapping = map_network(desc, &p.rom)?;
            let rom_mapped_bits =
                (mapping.subarrays_packed as u64 * p.rom.subarray_bits()).max(rom_bits);
            let (rom_cells, rom_adc, rom_drv, rom_ctrl) = macro_area_split(rom_mapped_bits, &p.rom);
            let (sram_cells, sram_adc, sram_drv, sram_ctrl) = macro_area_split(sram_bits, &p.sram);
            let area = AreaBreakdown {
                rom_array_mm2: rom_cells,
                sram_array_mm2: sram_cells
                    + (sram_bits as f64 / 1_048_576.0 / p.sram.spec().density_mb_per_mm2
                        - sram_cells)
                        .max(0.0),
                adc_mm2: rom_adc + sram_adc,
                driver_mm2: rom_drv + sram_drv,
                ctrl_mm2: rom_ctrl + sram_ctrl,
                buffer_mm2: buffer.area_mm2(),
            };
            // Correct double count: sram_array includes its periphery via
            // density; subtract the split components to avoid counting
            // them twice.
            let mut area = area;
            area.sram_array_mm2 =
                (area.sram_array_mm2 - sram_adc - sram_drv - sram_ctrl).max(sram_cells);

            // Latency: layer-pipelined MVM stream + un-hidden branch time.
            let branch_fraction = if trunk_macs > 0 {
                branch_macs as f64 / trunk_macs as f64
            } else {
                0.0
            };
            let latency_ns = mapping.total_mvms() as f64
                * p.rom.t_inference_ns
                * (1.0 + branch_fraction * p.branch_overlap);

            Ok(SystemReport {
                system: "YOLoC".to_string(),
                model: desc.name.clone(),
                area,
                latency_ms: latency_ns / 1e6,
                ops,
                energy_eff_tops_w: ops as f64 / (energy.total_uj() * 1e6),
                dram_traffic_bits: 0,
                link_traffic_bits: 0,
                energy,
            })
        }
        SystemKind::SramSingleChip { cim_area_mm2 } => {
            // Iso-area by default: the YOLoC chip's CiM area.
            let yoloc = evaluate(desc, SystemKind::Yoloc, p)?;
            let cim_area = cim_area_mm2.unwrap_or(yoloc.area.total_mm2() - yoloc.area.buffer_mm2);
            let capacity = (cim_area * p.sram.spec().density_mb_per_mm2 * 1_048_576.0) as u64;
            // Residency: keep the most reuse-intensive layers on chip.
            let mut order: Vec<usize> = (0..layers.len()).collect();
            order.sort_by(|&a, &b| {
                let ra = layers[a].macs as f64 / layers[a].w_bits as f64;
                let rb = layers[b].macs as f64 / layers[b].w_bits as f64;
                rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut resident = vec![false; layers.len()];
            let mut used = 0u64;
            for i in order {
                if used + layers[i].w_bits <= capacity {
                    used += layers[i].w_bits;
                    resident[i] = true;
                }
            }
            let spill_bits: u64 = layers
                .iter()
                .zip(&resident)
                .filter(|(_, &r)| !r)
                .map(|(l, _)| l.w_bits)
                .sum();
            // Non-resident layers break the pipeline: large maps at their
            // boundaries materialize through DRAM (write + read).
            let mut act_dram_bits = 0u64;
            for (i, l) in layers.iter().enumerate() {
                if resident[i] {
                    continue;
                }
                if l.in_bits > p.act_buffer_bits {
                    act_dram_bits += 2 * l.in_bits;
                }
                if l.out_bits > p.act_buffer_bits {
                    act_dram_bits += 2 * l.out_bits;
                }
            }
            let dram_bits = spill_bits + act_dram_bits;

            let cim_pj = 2.0 * total_macs as f64 * pj_per_op(&p.sram);
            let buffer_pj: f64 = layers
                .iter()
                .map(|l| buffer.access_energy_pj(2 * l.out_bits))
                .sum();
            let dram_pj = p.dram.transfer_energy_pj(dram_bits);
            let write_pj = spill_bits as f64 * p.sram.e_write_per_bit_pj;
            let dram_time_ns = p.dram.transfer_latency_ns(dram_bits);
            let stall_pj = p.idle_power_w * dram_time_ns * 1e3; // W * ns = nJ -> pJ: *1e3... (1 W = 1e3 pJ/ns)
            let energy = EnergyBreakdown {
                cim_uj: cim_pj / 1e6,
                peripheral_uj: cim_pj * (p.peripheral_overhead - 1.0) / 1e6,
                buffer_uj: buffer_pj / 1e6,
                noc_uj: 0.0,
                dram_uj: dram_pj / 1e6,
                write_uj: write_pj / 1e6,
                stall_uj: stall_pj / 1e6,
                link_uj: 0.0,
            };
            let mapping = map_network(desc, &p.sram)?;
            let compute_ns = mapping.total_mvms() as f64 * p.sram.t_inference_ns;
            // Ping-pong overlaps compute with streaming; the longer of the
            // two dominates, with a 5% switching penalty.
            let latency_ns = compute_ns.max(dram_time_ns) * 1.05;
            let (cells, adc, drv, ctrl) = macro_area_split(capacity, &p.sram);
            let scale = cim_area / (cells + adc + drv + ctrl).max(1e-12);
            Ok(SystemReport {
                system: "SRAM-CiM single chip".to_string(),
                model: desc.name.clone(),
                area: AreaBreakdown {
                    rom_array_mm2: 0.0,
                    sram_array_mm2: cells * scale,
                    adc_mm2: adc * scale,
                    driver_mm2: drv * scale,
                    ctrl_mm2: ctrl * scale,
                    buffer_mm2: buffer.area_mm2(),
                },
                latency_ms: latency_ns / 1e6,
                ops,
                energy_eff_tops_w: ops as f64 / (energy.total_uj() * 1e6),
                dram_traffic_bits: dram_bits,
                link_traffic_bits: 0,
                energy,
            })
        }
        SystemKind::SramChiplet { chips } => {
            let total_w_bits: u64 = layers.iter().map(|l| l.w_bits).sum();
            let yoloc = evaluate(desc, SystemKind::Yoloc, p)?;
            let chip_area = yoloc.area.total_mm2();
            let chip_capacity = (chip_area * p.sram.spec().density_mb_per_mm2 * 1_048_576.0) as u64;
            let n_chips = chips
                .unwrap_or_else(|| (total_w_bits as f64 / chip_capacity as f64).ceil() as usize)
                .max(1);
            // Assign layers to chips by cumulative weight; count boundary
            // crossings.
            let per_chip = total_w_bits.div_ceil(n_chips as u64);
            let mut link_bits = 0u64;
            let mut acc = 0u64;
            let mut chip_of = Vec::with_capacity(layers.len());
            for l in &layers {
                chip_of.push((acc / per_chip.max(1)) as usize);
                acc += l.w_bits;
            }
            for i in 1..layers.len() {
                if chip_of[i] != chip_of[i - 1] {
                    link_bits += layers[i].in_bits;
                }
            }
            let cim_pj = 2.0 * total_macs as f64 * pj_per_op(&p.sram);
            let buffer_pj: f64 = layers
                .iter()
                .map(|l| buffer.access_energy_pj(2 * l.out_bits))
                .sum();
            let link_pj = p.link.transfer_energy_pj(link_bits);
            let energy = EnergyBreakdown {
                cim_uj: cim_pj / 1e6,
                peripheral_uj: cim_pj * (p.peripheral_overhead - 1.0) / 1e6,
                buffer_uj: buffer_pj / 1e6,
                link_uj: link_pj / 1e6,
                ..Default::default()
            };
            let mapping = map_network(desc, &p.sram)?;
            let latency_ns = mapping.total_mvms() as f64 * p.sram.t_inference_ns
                + p.link.transfer_latency_ns(link_bits);
            let stored_bits = total_w_bits.max(chip_capacity * n_chips as u64);
            let (cells, adc, drv, ctrl) = macro_area_split(stored_bits, &p.sram);
            let density_area = total_w_bits as f64 / 1_048_576.0 / p.sram.spec().density_mb_per_mm2;
            let scale = density_area.max(1.0) / (cells + adc + drv + ctrl).max(1e-12);
            Ok(SystemReport {
                system: format!("SRAM-CiM {n_chips} chiplets"),
                model: desc.name.clone(),
                area: AreaBreakdown {
                    rom_array_mm2: 0.0,
                    sram_array_mm2: cells * scale,
                    adc_mm2: adc * scale,
                    driver_mm2: drv * scale,
                    ctrl_mm2: ctrl * scale,
                    buffer_mm2: buffer.area_mm2() * n_chips as f64,
                },
                latency_ms: latency_ns / 1e6,
                ops,
                energy_eff_tops_w: ops as f64 / (energy.total_uj() * 1e6),
                dram_traffic_bits: 0,
                link_traffic_bits: link_bits,
                energy,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yoloc_models::zoo;

    fn p() -> SystemParams {
        SystemParams::paper_default()
    }

    #[test]
    fn yoloc_has_no_dram_traffic() {
        let r = evaluate(&zoo::yolo_v2(20, 5), SystemKind::Yoloc, &p()).unwrap();
        assert_eq!(r.dram_traffic_bits, 0);
        assert!(r.energy.dram_uj == 0.0 && r.energy.stall_uj == 0.0);
        assert!(r.energy_eff_tops_w > 3.0, "eff {}", r.energy_eff_tops_w);
    }

    #[test]
    fn iso_area_sram_chip_spills_yolo_weights() {
        let net = zoo::yolo_v2(20, 5);
        let r = evaluate(
            &net,
            SystemKind::SramSingleChip { cim_area_mm2: None },
            &p(),
        )
        .unwrap();
        assert!(r.dram_traffic_bits > net.weight_bits(8) / 2);
        assert!(
            r.energy.dram_share() > 0.5,
            "share {}",
            r.energy.dram_share()
        );
    }

    #[test]
    fn yoloc_beats_single_chip_on_big_models() {
        let pp = p();
        for net in [
            zoo::resnet18(100),
            zoo::tiny_yolo(20, 5),
            zoo::yolo_v2(20, 5),
        ] {
            let y = evaluate(&net, SystemKind::Yoloc, &pp).unwrap();
            let s = evaluate(&net, SystemKind::SramSingleChip { cim_area_mm2: None }, &pp).unwrap();
            let improvement = y.energy_eff_tops_w / s.energy_eff_tops_w;
            assert!(
                improvement > 2.0,
                "{}: improvement only {improvement:.2}",
                net.name
            );
        }
    }

    #[test]
    fn chiplet_close_to_yoloc_energy_but_much_bigger() {
        let pp = p();
        let net = zoo::yolo_v2(20, 5);
        let y = evaluate(&net, SystemKind::Yoloc, &pp).unwrap();
        let c = evaluate(&net, SystemKind::SramChiplet { chips: None }, &pp).unwrap();
        // Paper: ~2% energy-efficiency difference (essentially parity),
        // ~10x area advantage for YOLoC.
        let e_ratio = y.energy_eff_tops_w / c.energy_eff_tops_w;
        assert!((0.8..1.6).contains(&e_ratio), "energy ratio {e_ratio}");
        let a_ratio = c.area.total_mm2() / y.area.total_mm2();
        assert!(a_ratio > 5.0, "area ratio {a_ratio}");
        assert_eq!(c.dram_traffic_bits, 0);
        assert!(c.link_traffic_bits > 0);
    }

    #[test]
    fn rebranch_latency_overhead_is_moderate() {
        // Paper: ~8% latency overhead from the residual branch on YOLO.
        let pp = p();
        let net = zoo::yolo_v2(20, 5);
        let with_branch = evaluate(&net, SystemKind::Yoloc, &pp).unwrap();
        let mut no_branch = pp.clone();
        no_branch.branch_overlap = 0.0;
        let base = evaluate(&net, SystemKind::Yoloc, &no_branch).unwrap();
        let overhead = with_branch.latency_ms / base.latency_ms - 1.0;
        assert!(
            (0.02..0.15).contains(&overhead),
            "branch latency overhead {overhead}"
        );
    }

    #[test]
    fn improvement_grows_from_vgg8_to_yolo() {
        // The Fig. 14(c) comparison runs every model on one chip design —
        // the YOLO-sized YOLoC chip and an SRAM-CiM chip of the same area
        // ("ISSCC 21 [3]-single chip"). Small models fit the SRAM chip and
        // gain little; YOLO-class models spill heavily and gain the most.
        let pp = p();
        let yolo_chip = evaluate(&zoo::yolo_v2(20, 5), SystemKind::Yoloc, &pp).unwrap();
        let iso = yolo_chip.area.total_mm2() - yolo_chip.area.buffer_mm2;
        let imp = |net: &NetworkDesc| {
            let y = evaluate(net, SystemKind::Yoloc, &pp).unwrap();
            let s = evaluate(
                net,
                SystemKind::SramSingleChip {
                    cim_area_mm2: Some(iso),
                },
                &pp,
            )
            .unwrap();
            y.energy_eff_tops_w / s.energy_eff_tops_w
        };
        let vgg = imp(&zoo::vgg8(100));
        let resnet = imp(&zoo::resnet18(100));
        let yolo = imp(&zoo::yolo_v2(20, 5));
        // VGG-8 fits on the iso-area SRAM chip: near parity (paper: 1x).
        assert!(vgg < 2.0, "vgg improvement {vgg}");
        assert!(resnet > vgg, "resnet {resnet} vs vgg {vgg}");
        assert!(yolo > 3.0, "yolo improvement {yolo}");
    }

    #[test]
    fn area_breakdown_sums() {
        let r = evaluate(&zoo::tiny_yolo(20, 5), SystemKind::Yoloc, &p()).unwrap();
        let a = &r.area;
        let total = a.total_mm2();
        assert!(total > 0.0);
        for part in [
            a.rom_array_mm2,
            a.sram_array_mm2,
            a.adc_mm2,
            a.driver_mm2,
            a.ctrl_mm2,
            a.buffer_mm2,
        ] {
            assert!(part >= 0.0 && part <= total + 1e-9);
        }
    }
}
