//! On-chip training cost model (paper §3.3, last paragraph).
//!
//! The paper observes that because only the small SRAM-CiM branch is
//! trainable, YOLoC "provides a chance to greatly reduce the on-chip
//! training overhead" compared with training a full SRAM-CiM model \[8\].
//! This module quantifies that claim: for one SGD step, it counts the
//! forward MACs, the backward MACs (input-gradient + weight-gradient
//! passes, the standard 2x of forward for *trainable* layers, 1x for
//! frozen layers that only propagate gradients), the weight-update array
//! writes, and the optimizer-state buffer traffic — then prices them with
//! the same macro/buffer constants as inference.

use serde::{Deserialize, Serialize};

use crate::rebranch::ReBranchRatios;
use crate::system::SystemParams;
use yoloc_memory::SramBuffer;
use yoloc_models::{LayerSpec, NetworkDesc, NetworkError};

/// What is trainable during on-chip adaptation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainableSet {
    /// Every weight (the all-SRAM-CiM baseline of \[8\]).
    All,
    /// Only ReBranch residual convs and the prediction head (YOLoC).
    ReBranchOnly,
    /// Only the prediction head (Option II extreme).
    HeadOnly,
}

/// Cost of one on-chip SGD step (batch size 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingCost {
    /// Forward MACs.
    pub forward_macs: u64,
    /// Backward MACs (input-gradient for all layers on the gradient path,
    /// weight-gradient only for trainable layers).
    pub backward_macs: u64,
    /// Trainable parameters updated.
    pub updated_params: u64,
    /// SRAM-CiM array write energy for the updates, µJ.
    pub update_write_uj: f64,
    /// Compute energy (forward + backward), µJ.
    pub compute_uj: f64,
    /// Optimizer-state (momentum) buffer traffic energy, µJ.
    pub optimizer_uj: f64,
}

impl TrainingCost {
    /// Total energy of the step, µJ.
    pub fn total_uj(&self) -> f64 {
        self.update_write_uj + self.compute_uj + self.optimizer_uj
    }
}

/// Estimates one SGD step's cost for `net` under the given trainable set.
///
/// # Errors
///
/// Propagates [`NetworkError`] on inconsistent model descriptions.
pub fn training_step_cost(
    net: &NetworkDesc,
    set: TrainableSet,
    p: &SystemParams,
) -> Result<TrainingCost, NetworkError> {
    let reports = net.analyze()?;
    let buffer = SramBuffer::new_28nm(p.act_buffer_bits);
    let (d, u) = (p.rebranch.d as u64, p.rebranch.u as u64);
    let mut forward = 0u64;
    let mut backward = 0u64;
    let mut updated = 0u64;
    let n_cim = reports.iter().filter(|r| r.lowered.is_some()).count();
    let mut cim_seen = 0usize;
    for r in &reports {
        let Some(_) = r.lowered else { continue };
        cim_seen += 1;
        let is_head = cim_seen == n_cim;
        forward += r.macs;
        // Input-gradient pass mirrors the forward for every layer that
        // sits on the gradient path (all of them, in a chain model).
        backward += r.macs;
        let (trainable_macs, trainable_params): (u64, u64) = match set {
            TrainableSet::All => (r.macs, r.params),
            TrainableSet::HeadOnly => {
                if is_head {
                    (r.macs, r.params)
                } else {
                    (0, 0)
                }
            }
            TrainableSet::ReBranchOnly => {
                if is_head {
                    (r.macs, r.params)
                } else if let LayerSpec::Conv { kernel, .. } = &net.layers[r.index] {
                    if *kernel > 1 {
                        // The branch's res-conv carries 1/(D*U) of the
                        // trunk's parameters and MACs.
                        (r.macs / (d * u), r.params / (d * u))
                    } else {
                        (0, 0)
                    }
                } else {
                    (0, 0)
                }
            }
        };
        // Weight-gradient pass costs one more MAC set for trainable
        // layers; forward of a branch adds its own (small) MACs too.
        backward += trainable_macs;
        updated += trainable_params;
    }
    let e_op = 1.0 / p.sram.spec().energy_efficiency_tops_w; // pJ per op
    let compute_pj = 2.0 * (forward + backward) as f64 * e_op * p.peripheral_overhead;
    let update_write_pj = updated as f64 * 8.0 * p.sram.e_write_per_bit_pj;
    // Momentum read + write per updated parameter (8-bit state).
    let optimizer_pj = buffer.access_energy_pj(updated * 8 * 2);
    Ok(TrainingCost {
        forward_macs: forward,
        backward_macs: backward,
        updated_params: updated,
        update_write_uj: update_write_pj / 1e6,
        compute_uj: compute_pj / 1e6,
        optimizer_uj: optimizer_pj / 1e6,
    })
}

/// Convenience: the ratio of full-model to ReBranch-only training energy.
///
/// # Errors
///
/// Propagates [`NetworkError`].
pub fn rebranch_training_saving(net: &NetworkDesc, p: &SystemParams) -> Result<f64, NetworkError> {
    let all = training_step_cost(net, TrainableSet::All, p)?;
    let rb = training_step_cost(net, TrainableSet::ReBranchOnly, p)?;
    Ok(all.total_uj() / rb.total_uj())
}

/// The ratios type re-exported for binaries that sweep it.
pub type BranchRatios = ReBranchRatios;

#[cfg(test)]
mod tests {
    use super::*;
    use yoloc_models::zoo;

    fn p() -> SystemParams {
        SystemParams::paper_default()
    }

    #[test]
    fn rebranch_updates_far_fewer_params() {
        let net = zoo::yolo_v2(20, 5);
        let all = training_step_cost(&net, TrainableSet::All, &p()).unwrap();
        let rb = training_step_cost(&net, TrainableSet::ReBranchOnly, &p()).unwrap();
        assert!(all.updated_params > 10 * rb.updated_params);
        // Forward cost is identical; backward is smaller for ReBranch.
        assert_eq!(all.forward_macs, rb.forward_macs);
        assert!(all.backward_macs > rb.backward_macs);
    }

    #[test]
    fn training_energy_saving_is_meaningful() {
        let net = zoo::yolo_v2(20, 5);
        let saving = rebranch_training_saving(&net, &p()).unwrap();
        // Compute dominates (forward + input-gradient run either way), so
        // the saving is bounded by ~1.5x on compute plus the update writes.
        assert!(saving > 1.2, "saving {saving}");
        assert!(saving < 3.0, "saving {saving} suspiciously large");
    }

    #[test]
    fn head_only_is_cheapest() {
        let net = zoo::resnet18(100);
        let pp = p();
        let all = training_step_cost(&net, TrainableSet::All, &pp).unwrap();
        let rb = training_step_cost(&net, TrainableSet::ReBranchOnly, &pp).unwrap();
        let head = training_step_cost(&net, TrainableSet::HeadOnly, &pp).unwrap();
        assert!(head.total_uj() < rb.total_uj());
        assert!(rb.total_uj() < all.total_uj());
        assert!(head.updated_params < rb.updated_params);
    }

    #[test]
    fn update_write_energy_scales_with_params() {
        let net = zoo::vgg8(100);
        let all = training_step_cost(&net, TrainableSet::All, &p()).unwrap();
        let expect = all.updated_params as f64 * 8.0 * p().sram.e_write_per_bit_pj / 1e6;
        assert!((all.update_write_uj - expect).abs() < 1e-9);
    }
}
