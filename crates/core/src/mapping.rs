//! Weight-to-subarray mapping (paper §4.3.2).
//!
//! Every CiM layer lowers to a `(outs, ins)` matrix occupying `ins` word
//! lines and `outs * weight_bits` bit lines, tiled over 128x256 subarrays.
//! A naive mapping gives every layer its own subarrays, wasting the
//! partial tiles of small layers; the paper's optimized scheme stores "the
//! weights of different layers to the same sub-array, so as to achieve
//! high ADC utilization and thus reduced latency". We implement both and
//! expose the utilization gain (an ablation the bench harness reports).

use serde::{Deserialize, Serialize};

use yoloc_cim::MacroParams;
use yoloc_models::{NetworkDesc, NetworkError};

/// Which subarray placement scheme a deployment is accounted under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingStrategy {
    /// Exclusive per-layer tiling (every layer gets its own subarrays).
    Naive,
    /// The paper's cross-layer packing: partial tiles of different layers
    /// share subarrays for high ADC utilization. Functionally transparent
    /// (co-located layers occupy disjoint columns), so it changes the
    /// placement/area accounting, not the simulated datapath.
    Packed,
    /// Chiplet sharding: layers are spread across `chips` dies in
    /// execution order, balanced by subarray demand, each die packing its
    /// own layers ([`ShardPlan`]). Functionally transparent like packing,
    /// but the executors price activation traffic that crosses a die
    /// boundary through the chiplet link, so energy and latency reflect
    /// the shard topology.
    Sharded {
        /// Number of chiplets.
        chips: usize,
    },
}

/// Placement summary for one CiM layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPlacement {
    /// Layer name.
    pub name: String,
    /// Dot-product depth (word lines needed).
    pub ins: usize,
    /// Output neurons.
    pub outs: usize,
    /// Matrix-vector products per inference.
    pub mvms: u64,
    /// Word-line tiles (`ceil(ins / rows)`).
    pub row_tiles: usize,
    /// Bit-line tiles (`ceil(outs * weight_bits / cols)`).
    pub col_tiles: usize,
    /// Weight bits stored.
    pub used_bits: u64,
    /// Physical subarray ids backing this placement, in row-major tile
    /// order (`rt * col_tiles + ct`), assigned by [`assign_subarrays`]
    /// when the deployment carries a [`FaultMap`]. `None` on mappings
    /// produced without fault awareness — and on every `yoloc-plan/1`
    /// plan read back from disk, which is why this is an `Option`.
    pub subarray_ids: Option<Vec<u64>>,
}

impl LayerPlacement {
    /// Subarrays consumed by a naive (exclusive) mapping.
    pub fn naive_subarrays(&self) -> usize {
        self.row_tiles * self.col_tiles
    }

    /// Whether this placement fits the subarray geometry of `params`:
    /// the tile grid covers the whole lowered matrix (`ins` word lines,
    /// `outs * weight_bits` bit lines) with no tile exceeding the
    /// `rows x cols` bounds, and no over-allocation (the grid is exactly
    /// the ceiling division).
    pub fn fits(&self, params: &MacroParams) -> bool {
        let bit_cols = self.outs * params.weight_bits as usize;
        self.row_tiles == self.ins.div_ceil(params.rows)
            && self.col_tiles == bit_cols.div_ceil(params.cols)
            && self.row_tiles * params.rows >= self.ins
            && self.col_tiles * params.cols >= bit_cols
    }
}

/// How a network's layers are spread across chiplets under
/// [`MappingStrategy::Sharded`]: a contiguous, subarray-balanced partition
/// of the placement list, each chip shelf-packing its own layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// Chip index of each placement, aligned with
    /// `NetworkMapping::placements`.
    pub chip_of: Vec<usize>,
    /// Number of chiplets.
    pub chips: usize,
    /// Packed subarrays per chip.
    pub subarrays_per_chip: Vec<usize>,
    /// Total packed subarrays across all chips (>= the single-chip packed
    /// count: partial tiles cannot pack across dies).
    pub subarrays_total: usize,
    /// Layer boundaries whose activations cross a die (execution order).
    pub boundary_crossings: usize,
}

/// A whole network mapped onto CiM subarrays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkMapping {
    /// Per-layer placements in execution order.
    pub placements: Vec<LayerPlacement>,
    /// Subarrays under the naive exclusive mapping.
    pub subarrays_naive: usize,
    /// Subarrays after cross-layer packing (the paper's optimization).
    pub subarrays_packed: usize,
    /// Cell utilization under the naive mapping, in (0, 1].
    pub utilization_naive: f64,
    /// Cell utilization after packing.
    pub utilization_packed: f64,
    /// Total weight bits stored.
    pub total_weight_bits: u64,
    /// Chiplet shard layout (populated when mapped with
    /// [`MappingStrategy::Sharded`]; see [`map_network_with`]).
    pub shard: Option<ShardPlan>,
}

impl NetworkMapping {
    /// Total matrix-vector products per inference.
    pub fn total_mvms(&self) -> u64 {
        self.placements.iter().map(|p| p.mvms).sum()
    }

    /// Subarrays consumed under `strategy`. For [`MappingStrategy::Sharded`]
    /// this is the per-die packed total when a shard plan exists, else the
    /// single-chip packed count.
    pub fn subarrays(&self, strategy: MappingStrategy) -> usize {
        match strategy {
            MappingStrategy::Naive => self.subarrays_naive,
            MappingStrategy::Packed => self.subarrays_packed,
            MappingStrategy::Sharded { .. } => self
                .shard
                .as_ref()
                .map_or(self.subarrays_packed, |s| s.subarrays_total),
        }
    }

    /// Cell utilization under `strategy`, in (0, 1].
    pub fn utilization(&self, strategy: MappingStrategy) -> f64 {
        match strategy {
            MappingStrategy::Naive => self.utilization_naive,
            MappingStrategy::Packed => self.utilization_packed,
            MappingStrategy::Sharded { .. } => match &self.shard {
                None => self.utilization_packed,
                Some(s) if s.subarrays_total == 0 => 1.0,
                Some(s) => {
                    self.utilization_packed * self.subarrays_packed as f64
                        / s.subarrays_total as f64
                }
            },
        }
    }
}

/// Fabric-level subarray health: which physical subarrays are dead, how
/// many exist, and how many are held back as hot spares.
///
/// The id space is `[0, total)`; the top `spare` ids are reserved for
/// repair and never handed out by the initial [`assign_subarrays`] pass.
/// `dead` is kept sorted so membership tests are a binary search and
/// serialization is canonical (byte-stable across runs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMap {
    /// Dead physical subarray ids, sorted ascending, deduplicated.
    pub dead: Vec<u64>,
    /// Total physical subarrays in the fabric.
    pub total: u64,
    /// Subarrays reserved as spares at the top of the id space.
    pub spare: u64,
}

impl FaultMap {
    /// A fully healthy fabric of `total` subarrays with `spare` of them
    /// reserved for repair.
    pub fn healthy(total: u64, spare: u64) -> Self {
        FaultMap {
            dead: Vec::new(),
            total,
            spare: spare.min(total),
        }
    }

    /// Whether subarray `id` is marked dead.
    pub fn is_dead(&self, id: u64) -> bool {
        self.dead.binary_search(&id).is_ok()
    }

    /// Marks `id` dead; returns `true` when it was previously healthy.
    pub fn mark_dead(&mut self, id: u64) -> bool {
        match self.dead.binary_search(&id) {
            Ok(_) => false,
            Err(at) => {
                self.dead.insert(at, id);
                true
            }
        }
    }

    /// Ids available to the initial placement pass (`total - spare`).
    pub fn usable(&self) -> u64 {
        self.total - self.spare
    }

    /// Live (non-dead) subarrays across the whole fabric.
    pub fn live_count(&self) -> u64 {
        self.total - self.dead.len() as u64
    }
}

/// Why fault-aware placement or repair failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapFaultError {
    /// The live, non-spare region cannot hold every placement.
    OutOfSubarrays {
        /// Subarrays the network needs (naive/exclusive tiling).
        needed: u64,
        /// Live subarrays available outside the spare pool.
        available: u64,
    },
    /// A repair ran out of live spare subarrays.
    OutOfSpares,
}

impl std::fmt::Display for MapFaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapFaultError::OutOfSubarrays { needed, available } => write!(
                f,
                "network needs {needed} subarrays but only {available} live \
                 non-spare subarrays exist"
            ),
            MapFaultError::OutOfSpares => write!(f, "spare subarray pool exhausted during repair"),
        }
    }
}

impl std::error::Error for MapFaultError {}

/// Assigns physical subarray ids to every placement: a single cursor
/// walks the usable region `[0, faults.usable())` in order, skipping
/// dead subarrays, and each placement takes its naive (exclusive) tile
/// count in row-major tile order (`rt * col_tiles + ct` — the order the
/// fault-aware programmer expects its `phys_ids` in).
///
/// Placement is exclusive even under [`MappingStrategy::Packed`]: packing
/// changes the *area accounting*, but attributing each layer's tiles to
/// distinct physical ids keeps "which layers does this dead subarray
/// hit" well-defined and conservative.
///
/// The walk is a pure function of the placement list and the fault map,
/// so the same inputs always yield the same ids.
///
/// # Errors
///
/// [`MapFaultError::OutOfSubarrays`] when the live non-spare region is
/// too small; placements are left untouched in that case.
pub fn assign_subarrays(
    mapping: &mut NetworkMapping,
    faults: &FaultMap,
) -> Result<(), MapFaultError> {
    let needed: u64 = mapping
        .placements
        .iter()
        .map(|p| p.naive_subarrays() as u64)
        .sum();
    let dead_in_usable = faults.dead.iter().filter(|&&d| d < faults.usable()).count() as u64;
    let available = faults.usable() - dead_in_usable;
    if needed > available {
        return Err(MapFaultError::OutOfSubarrays { needed, available });
    }
    let mut cursor = 0u64;
    for p in &mut mapping.placements {
        let mut ids = Vec::with_capacity(p.naive_subarrays());
        while ids.len() < p.naive_subarrays() {
            if !faults.is_dead(cursor) {
                ids.push(cursor);
            }
            cursor += 1;
        }
        p.subarray_ids = Some(ids);
    }
    Ok(())
}

/// Repairs a mapping after subarrays die in the field: marks `newly_dead`
/// in `faults`, then rewrites only the placements whose assigned ids were
/// hit, pulling replacements from the spare pool (top of the id space,
/// lowest free spare first). Untouched placements keep their ids — a
/// repair recompiles only the layers it returns.
///
/// Returns the indices (into `mapping.placements`) of the placements
/// whose id lists changed, sorted ascending.
///
/// # Errors
///
/// [`MapFaultError::OutOfSpares`] when the live spare pool cannot cover
/// every hit slot. `faults` still records the new deaths in that case,
/// but no placement is modified.
pub fn remap_placements(
    mapping: &mut NetworkMapping,
    faults: &mut FaultMap,
    newly_dead: &[u64],
) -> Result<Vec<usize>, MapFaultError> {
    for &id in newly_dead {
        faults.mark_dead(id);
    }
    // Spares already consumed by earlier repairs stay off the free list.
    let mut in_use: Vec<u64> = mapping
        .placements
        .iter()
        .filter_map(|p| p.subarray_ids.as_ref())
        .flatten()
        .copied()
        .collect();
    in_use.sort_unstable();
    let mut free_spares = (faults.usable()..faults.total)
        .filter(|&s| !faults.is_dead(s) && in_use.binary_search(&s).is_err());
    let mut affected = Vec::new();
    let mut repaired: Vec<(usize, Vec<u64>)> = Vec::new();
    for (idx, p) in mapping.placements.iter().enumerate() {
        let Some(ids) = &p.subarray_ids else { continue };
        if !ids.iter().any(|&id| faults.is_dead(id)) {
            continue;
        }
        let mut next = ids.clone();
        for slot in &mut next {
            if faults.is_dead(*slot) {
                *slot = free_spares.next().ok_or(MapFaultError::OutOfSpares)?;
            }
        }
        repaired.push((idx, next));
        affected.push(idx);
    }
    for (idx, ids) in repaired {
        mapping.placements[idx].subarray_ids = Some(ids);
    }
    Ok(affected)
}

/// A partial-tile rectangle (rows x cols of cells) awaiting packing.
#[derive(Debug, Clone, Copy)]
struct Rect {
    rows: usize,
    cols: usize,
}

/// Shelf-packs rectangles into `rows x cols` bins, returning the bin count.
fn shelf_pack(mut rects: Vec<Rect>, bin_rows: usize, bin_cols: usize) -> usize {
    // Tallest first, then widest: classic decreasing-height shelf packing.
    rects.sort_by(|a, b| b.rows.cmp(&a.rows).then(b.cols.cmp(&a.cols)));
    // Each shelf: (height, remaining width). Each bin: remaining height +
    // open shelves.
    struct Bin {
        free_rows: usize,
        shelves: Vec<(usize, usize)>, // (shelf height, free cols)
    }
    let mut bins: Vec<Bin> = Vec::new();
    'next: for r in rects {
        // Try existing shelves first.
        for bin in &mut bins {
            for shelf in &mut bin.shelves {
                if shelf.0 >= r.rows && shelf.1 >= r.cols {
                    shelf.1 -= r.cols;
                    continue 'next;
                }
            }
        }
        // Try opening a new shelf in an existing bin.
        for bin in &mut bins {
            if bin.free_rows >= r.rows {
                bin.free_rows -= r.rows;
                bin.shelves.push((r.rows, bin_cols - r.cols));
                continue 'next;
            }
        }
        // New bin.
        bins.push(Bin {
            free_rows: bin_rows - r.rows,
            shelves: vec![(r.rows, bin_cols - r.cols)],
        });
    }
    bins.len()
}

/// Decomposes one lowered `(ins, outs)` matrix into full subarray tiles
/// plus the partial rectangles available for cross-layer packing.
fn tile_decomposition(ins: usize, outs: usize, params: &MacroParams) -> (usize, Vec<Rect>) {
    let bit_cols = outs * params.weight_bits as usize;
    let full_rows = ins / params.rows;
    let rem_rows = ins % params.rows;
    let full_cols = bit_cols / params.cols;
    let rem_cols = bit_cols % params.cols;
    let mut partials = Vec::new();
    if rem_cols > 0 && full_rows > 0 {
        for _ in 0..full_rows {
            partials.push(Rect {
                rows: params.rows,
                cols: rem_cols,
            });
        }
    }
    if rem_rows > 0 && full_cols > 0 {
        for _ in 0..full_cols {
            partials.push(Rect {
                rows: rem_rows,
                cols: params.cols,
            });
        }
    }
    if rem_rows > 0 && rem_cols > 0 {
        partials.push(Rect {
            rows: rem_rows,
            cols: rem_cols,
        });
    }
    (full_rows * full_cols, partials)
}

/// Packed subarray count of a set of placements (each die packs its own
/// layers under [`MappingStrategy::Sharded`]).
fn pack_placements(placements: &[&LayerPlacement], params: &MacroParams) -> usize {
    let mut full = 0usize;
    let mut partials = Vec::new();
    for p in placements {
        let (f, mut parts) = tile_decomposition(p.ins, p.outs, params);
        full += f;
        partials.append(&mut parts);
    }
    full + shelf_pack(partials, params.rows, params.cols)
}

/// Spreads `mapping`'s placements across `chips` dies: a contiguous
/// partition in execution order (activations stream die to die at most
/// once per boundary), balanced by naive subarray demand, each die
/// shelf-packing its own layers.
pub fn shard_network(mapping: &NetworkMapping, params: &MacroParams, chips: usize) -> ShardPlan {
    let chips = chips.max(1);
    let total: usize = mapping
        .placements
        .iter()
        .map(LayerPlacement::naive_subarrays)
        .sum();
    let per_chip = total.div_ceil(chips).max(1);
    let mut chip_of = Vec::with_capacity(mapping.placements.len());
    let mut acc = 0usize;
    for p in &mapping.placements {
        chip_of.push((acc / per_chip).min(chips - 1));
        acc += p.naive_subarrays();
    }
    let subarrays_per_chip: Vec<usize> = (0..chips)
        .map(|c| {
            let group: Vec<&LayerPlacement> = mapping
                .placements
                .iter()
                .zip(&chip_of)
                .filter(|(_, &ch)| ch == c)
                .map(|(p, _)| p)
                .collect();
            pack_placements(&group, params)
        })
        .collect();
    let boundary_crossings = chip_of.windows(2).filter(|w| w[0] != w[1]).count();
    ShardPlan {
        chips,
        subarrays_total: subarrays_per_chip.iter().sum(),
        subarrays_per_chip,
        boundary_crossings,
        chip_of,
    }
}

/// Maps a network's CiM layers onto subarrays of `params`.
///
/// # Errors
///
/// Propagates [`NetworkError`] if the network's shapes are inconsistent.
pub fn map_network(
    desc: &NetworkDesc,
    params: &MacroParams,
) -> Result<NetworkMapping, NetworkError> {
    map_network_with(desc, params, MappingStrategy::Packed)
}

/// [`map_network`] with an explicit strategy: under
/// [`MappingStrategy::Sharded`] the returned mapping additionally carries
/// the [`ShardPlan`].
///
/// # Errors
///
/// Propagates [`NetworkError`] if the network's shapes are inconsistent.
pub fn map_network_with(
    desc: &NetworkDesc,
    params: &MacroParams,
    strategy: MappingStrategy,
) -> Result<NetworkMapping, NetworkError> {
    let reports = desc.analyze()?;
    let wb = params.weight_bits as usize;
    let mut placements = Vec::new();
    let mut full_tiles = 0usize;
    let mut partials: Vec<Rect> = Vec::new();
    let mut total_bits = 0u64;
    for r in &reports {
        let Some(m) = r.lowered else { continue };
        let bit_cols = m.outs * wb;
        let row_tiles = m.ins.div_ceil(params.rows);
        let col_tiles = bit_cols.div_ceil(params.cols);
        total_bits += (m.ins * m.outs * wb) as u64;
        placements.push(LayerPlacement {
            name: r.name.clone(),
            ins: m.ins,
            outs: m.outs,
            mvms: m.mvms,
            row_tiles,
            col_tiles,
            used_bits: (m.ins * m.outs * wb) as u64,
            subarray_ids: None,
        });
        // Decompose into full tiles + partial rectangles for packing.
        let (full, mut parts) = tile_decomposition(m.ins, m.outs, params);
        full_tiles += full;
        partials.append(&mut parts);
    }
    let subarrays_naive: usize = placements.iter().map(|p| p.naive_subarrays()).sum();
    let packed_bins = shelf_pack(partials, params.rows, params.cols);
    let subarrays_packed = full_tiles + packed_bins;
    let cell_bits = params.subarray_bits() as f64;
    let utilization = |subs: usize| {
        if subs == 0 {
            1.0
        } else {
            total_bits as f64 / (subs as f64 * cell_bits)
        }
    };
    let mut mapping = NetworkMapping {
        subarrays_naive,
        subarrays_packed,
        utilization_naive: utilization(subarrays_naive),
        utilization_packed: utilization(subarrays_packed),
        total_weight_bits: total_bits,
        placements,
        shard: None,
    };
    if let MappingStrategy::Sharded { chips } = strategy {
        mapping.shard = Some(shard_network(&mapping, params, chips));
    }
    Ok(mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use yoloc_models::zoo;

    /// A random but shape-consistent conv/pool/linear stack.
    fn random_network(seed: u64) -> yoloc_models::NetworkDesc {
        let mut rng = StdRng::seed_from_u64(seed);
        let in_ch = rng.gen_range(1usize..24);
        let mut hw = rng.gen_range(6usize..28);
        let mut net = yoloc_models::NetworkDesc::new("mix", (in_ch, hw, hw));
        let mut ch = in_ch;
        let n_layers = rng.gen_range(1usize..9);
        for i in 0..n_layers {
            let options: Vec<usize> = [1usize, 3, 5].into_iter().filter(|&k| k <= hw).collect();
            let kernel = options[rng.gen_range(0..options.len())];
            let out_ch = rng.gen_range(1usize..48);
            net.layers.push(yoloc_models::LayerSpec::Conv {
                name: format!("c{i}"),
                in_ch: ch,
                out_ch,
                kernel,
                stride: 1,
                padding: kernel / 2,
                bias: false,
            });
            ch = out_ch;
            if hw >= 4 && rng.gen_bool(0.3) {
                net.layers.push(yoloc_models::LayerSpec::MaxPool {
                    kernel: 2,
                    stride: 2,
                });
                hw /= 2;
            }
        }
        if rng.gen_bool(0.5) {
            net.layers.push(yoloc_models::LayerSpec::GlobalAvgPool);
            net.layers.push(yoloc_models::LayerSpec::Linear {
                name: "fc".into(),
                in_features: ch,
                out_features: rng.gen_range(2usize..40),
                bias: true,
            });
        }
        net
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_packed_never_worse_and_placements_fit(seed in 0u64..1_000_000) {
            // Across randomized layer mixes: the optimized packing never
            // consumes more subarrays than the naive mapping, every
            // placement's tile grid fits the 128x256 subarray bounds, and
            // utilization stays physical (0 < u <= 1).
            let net = random_network(seed);
            prop_assert!(net.analyze().is_ok(), "generator must emit valid networks");
            let params = MacroParams::rom_paper();
            let m = map_network(&net, &params).unwrap();
            prop_assert!(
                m.subarrays_packed <= m.subarrays_naive,
                "packed {} vs naive {}",
                m.subarrays_packed,
                m.subarrays_naive
            );
            for p in &m.placements {
                prop_assert!(p.fits(&params), "{:?} does not fit 128x256", p);
                prop_assert!(p.naive_subarrays() >= 1);
            }
            if !m.placements.is_empty() {
                prop_assert!(m.utilization_naive > 0.0 && m.utilization_naive <= 1.0 + 1e-9);
                prop_assert!(m.utilization_packed > 0.0 && m.utilization_packed <= 1.0 + 1e-9);
                prop_assert!(m.utilization_packed >= m.utilization_naive - 1e-12);
                // Capacity sanity: the packed placement still holds every bit.
                let capacity = m.subarrays_packed as u64 * params.subarray_bits();
                prop_assert!(capacity >= m.total_weight_bits);
            }
            // Strategy accessors agree with the raw fields.
            prop_assert_eq!(m.subarrays(MappingStrategy::Naive), m.subarrays_naive);
            prop_assert_eq!(m.subarrays(MappingStrategy::Packed), m.subarrays_packed);
        }
    }

    #[test]
    fn packing_never_worse_than_naive() {
        let params = MacroParams::rom_paper();
        for net in [zoo::vgg8(100), zoo::resnet18(100), zoo::tiny_yolo(20, 5)] {
            let m = map_network(&net, &params).unwrap();
            assert!(
                m.subarrays_packed <= m.subarrays_naive,
                "{}: packed {} vs naive {}",
                net.name,
                m.subarrays_packed,
                m.subarrays_naive
            );
            assert!(m.utilization_packed >= m.utilization_naive);
            assert!(m.utilization_packed <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn packing_helps_on_odd_sized_layers() {
        // Layers whose dimensions are not multiples of the 128x256 grid
        // leave subarrays mostly idle under the naive mapping; the paper's
        // shared-subarray scheme claws that back.
        let mut net = yoloc_models::NetworkDesc::new("odd", (20, 16, 16));
        for i in 0..8 {
            net.layers.push(yoloc_models::LayerSpec::Conv {
                name: format!("c{i}"),
                in_ch: 20,
                out_ch: 20,
                kernel: 3,
                stride: 1,
                padding: 1,
                bias: false,
            });
        }
        let m = map_network(&net, &MacroParams::rom_paper()).unwrap();
        assert!(
            m.utilization_packed > 1.3 * m.utilization_naive,
            "packed {} vs naive {}",
            m.utilization_packed,
            m.utilization_naive
        );
        assert!(m.subarrays_packed < m.subarrays_naive);
    }

    #[test]
    fn total_bits_match_lowered_matrices() {
        // The mapper stores exactly the lowered weight matrices (biases
        // are applied digitally after the ADC, not stored in arrays).
        let net = zoo::vgg8(10);
        let m = map_network(&net, &MacroParams::rom_paper()).unwrap();
        let expected: u64 = net
            .analyze()
            .unwrap()
            .iter()
            .filter_map(|r| r.lowered)
            .map(|l| (l.ins * l.outs * 8) as u64)
            .sum();
        assert_eq!(m.total_weight_bits, expected);
        // Within bias rounding of the IR's 8-bit weight count.
        assert!(m.total_weight_bits <= net.weight_bits(8));
        assert!(m.total_weight_bits as f64 > 0.999 * net.weight_bits(8) as f64);
    }

    #[test]
    fn capacity_accounting_subarray_count() {
        // A single 128-in 32-out layer occupies exactly one subarray
        // (32 outs x 8 bits = 256 columns).
        let mut net = yoloc_models::NetworkDesc::new("one", (128, 1, 1));
        net.layers.push(yoloc_models::LayerSpec::Linear {
            name: "fc".into(),
            in_features: 128,
            out_features: 32,
            bias: false,
        });
        let m = map_network(&net, &MacroParams::rom_paper()).unwrap();
        assert_eq!(m.subarrays_naive, 1);
        assert_eq!(m.subarrays_packed, 1);
        assert!((m.utilization_naive - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sharded_mapping_partitions_contiguously_and_packs_per_die() {
        let desc = zoo::yolo_v2(20, 5);
        let strategy = MappingStrategy::Sharded { chips: 4 };
        let m = map_network_with(&desc, &MacroParams::rom_paper(), strategy).unwrap();
        let s = m.shard.as_ref().expect("sharded mapping carries a plan");
        assert_eq!(s.chips, 4);
        assert_eq!(s.chip_of.len(), m.placements.len());
        // Contiguous in execution order: chip ids are monotone, so
        // activations cross each die boundary at most once.
        assert!(s.chip_of.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            s.boundary_crossings,
            s.chip_of.windows(2).filter(|w| w[0] != w[1]).count()
        );
        assert!(s.boundary_crossings <= 3);
        // Per-die packing sits between global packing and naive.
        assert!(s.subarrays_total >= m.subarrays_packed);
        assert!(s.subarrays_total <= m.subarrays_naive);
        assert_eq!(m.subarrays(strategy), s.subarrays_total);
        // A YOLO-sized network populates every die.
        for c in 0..4 {
            assert!(s.chip_of.contains(&c), "chip {c} left empty");
        }
        let u = m.utilization(strategy);
        assert!(u > 0.0 && u <= 1.0 + 1e-9, "utilization {u}");
    }

    #[test]
    fn single_chip_shard_degenerates_to_packed() {
        let desc = zoo::vgg8(10);
        let strategy = MappingStrategy::Sharded { chips: 1 };
        let m = map_network_with(&desc, &MacroParams::rom_paper(), strategy).unwrap();
        let s = m.shard.as_ref().unwrap();
        assert_eq!(s.subarrays_total, m.subarrays_packed);
        assert_eq!(s.boundary_crossings, 0);
        assert!(s.chip_of.iter().all(|&c| c == 0));
    }

    #[test]
    fn assignment_skips_dead_subarrays_deterministically() {
        let params = MacroParams::rom_paper();
        let net = zoo::vgg8(10);
        let mut m = map_network(&net, &params).unwrap();
        let total = (m.subarrays_naive as u64) * 2;
        let mut faults = FaultMap::healthy(total, total / 4);
        faults.mark_dead(0);
        faults.mark_dead(3);
        assign_subarrays(&mut m, &faults).unwrap();
        let mut seen = Vec::new();
        for p in &m.placements {
            let ids = p.subarray_ids.as_ref().expect("ids assigned");
            assert_eq!(ids.len(), p.naive_subarrays());
            for &id in ids {
                assert!(!faults.is_dead(id), "assigned a dead subarray {id}");
                assert!(id < faults.usable(), "spilled into the spare pool");
                seen.push(id);
            }
        }
        let n = seen.len();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), n, "exclusive placement never shares ids");
        assert!(!seen.contains(&0) && !seen.contains(&3));
        // Same inputs, same ids.
        let mut twin = map_network(&net, &params).unwrap();
        assign_subarrays(&mut twin, &faults).unwrap();
        assert_eq!(twin, m);
    }

    #[test]
    fn assignment_fails_cleanly_when_fabric_too_small() {
        let net = zoo::vgg8(10);
        let mut m = map_network(&net, &MacroParams::rom_paper()).unwrap();
        let needed = m.subarrays_naive as u64;
        let faults = FaultMap::healthy(needed, 1); // spare eats one slot
        let err = assign_subarrays(&mut m, &faults).unwrap_err();
        assert_eq!(
            err,
            MapFaultError::OutOfSubarrays {
                needed,
                available: needed - 1
            }
        );
        assert!(m.placements.iter().all(|p| p.subarray_ids.is_none()));
    }

    #[test]
    fn remap_touches_only_hit_placements_and_draws_spares() {
        let params = MacroParams::rom_paper();
        let net = zoo::vgg8(10);
        let mut m = map_network(&net, &params).unwrap();
        let total = (m.subarrays_naive as u64) + 8;
        let mut faults = FaultMap::healthy(total, 8);
        assign_subarrays(&mut m, &faults).unwrap();
        let before = m.clone();
        // Kill one subarray belonging to placement 1.
        let victim = before.placements[1].subarray_ids.as_ref().unwrap()[0];
        let affected = remap_placements(&mut m, &mut faults, &[victim]).unwrap();
        assert_eq!(affected, vec![1]);
        assert!(faults.is_dead(victim));
        for (i, (p, old)) in m.placements.iter().zip(&before.placements).enumerate() {
            if i == 1 {
                let ids = p.subarray_ids.as_ref().unwrap();
                assert!(!ids.contains(&victim));
                // The replacement comes from the spare region.
                let spare_used = ids.iter().any(|&id| id >= faults.usable());
                assert!(spare_used, "repair must draw from the spare pool");
            } else {
                assert_eq!(p, old, "unaffected placement {i} was rewritten");
            }
        }
        // A second failure on the same placement draws the next spare.
        let victim2 = m.placements[1].subarray_ids.as_ref().unwrap()[1];
        let affected2 = remap_placements(&mut m, &mut faults, &[victim2]).unwrap();
        assert_eq!(affected2, vec![1]);
        let ids = m.placements[1].subarray_ids.as_ref().unwrap();
        let spares: Vec<u64> = ids
            .iter()
            .copied()
            .filter(|&i| i >= faults.usable())
            .collect();
        assert_eq!(spares.len(), 2);
        assert_ne!(spares[0], spares[1]);
    }

    #[test]
    fn remap_exhausting_spares_errors_without_partial_rewrites() {
        let params = MacroParams::rom_paper();
        let net = zoo::vgg8(10);
        let mut m = map_network(&net, &params).unwrap();
        let total = (m.subarrays_naive as u64) + 1;
        let mut faults = FaultMap::healthy(total, 1);
        assign_subarrays(&mut m, &faults).unwrap();
        let before = m.clone();
        let ids: Vec<u64> = before.placements[0]
            .subarray_ids
            .as_ref()
            .unwrap()
            .iter()
            .copied()
            .take(2)
            .collect();
        assert!(ids.len() >= 2, "need two victims for this test");
        let err = remap_placements(&mut m, &mut faults, &ids).unwrap_err();
        assert_eq!(err, MapFaultError::OutOfSpares);
        // Deaths are recorded, but no placement was half-repaired.
        assert!(ids.iter().all(|&i| faults.is_dead(i)));
        assert_eq!(m.placements, before.placements);
    }

    #[test]
    fn shelf_pack_basics() {
        // Four quarter-size rectangles fit one bin.
        let rects = vec![
            Rect {
                rows: 64,
                cols: 128,
            },
            Rect {
                rows: 64,
                cols: 128,
            },
            Rect {
                rows: 64,
                cols: 128,
            },
            Rect {
                rows: 64,
                cols: 128,
            },
        ];
        assert_eq!(shelf_pack(rects, 128, 256), 1);
        // An oversize-ish pair needs two bins.
        let rects = vec![
            Rect {
                rows: 128,
                cols: 200,
            },
            Rect {
                rows: 128,
                cols: 200,
            },
        ];
        assert_eq!(shelf_pack(rects, 128, 256), 2);
    }
}
