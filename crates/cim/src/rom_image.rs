//! ROM mask-image generation and serialization.
//!
//! The defining property of ROM-CiM is that weights are fixed at *mask*
//! time: the fab needs a bit image specifying which access-transistor
//! gates strap to the word line. This module builds that image from
//! programmed subarray contents, serializes it to a compact binary format
//! (magic, geometry header, packed bits, checksum) and estimates the
//! one-time mask cost — the economic flip side of Fig. 1(a).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Format magic: "YROM" + version 1.
const MAGIC: u32 = 0x59_52_4F_4D;
const VERSION: u16 = 1;

/// Error while parsing a serialized ROM image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RomImageError {
    /// Explanation.
    pub msg: String,
}

impl std::fmt::Display for RomImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rom image error: {}", self.msg)
    }
}

impl std::error::Error for RomImageError {}

fn err(msg: impl Into<String>) -> RomImageError {
    RomImageError { msg: msg.into() }
}

/// A mask bit image for a set of identical subarrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RomImage {
    rows: usize,
    cols: usize,
    /// One bit-vector per subarray, row-major, `rows * cols` bits each.
    subarrays: Vec<Vec<bool>>,
}

impl RomImage {
    /// Creates an empty image for `rows x cols` subarrays.
    pub fn new(rows: usize, cols: usize) -> Self {
        RomImage {
            rows,
            cols,
            subarrays: Vec::new(),
        }
    }

    /// Appends one subarray's contents.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != rows * cols`.
    pub fn push_subarray(&mut self, bits: Vec<bool>) {
        assert_eq!(bits.len(), self.rows * self.cols, "subarray size mismatch");
        self.subarrays.push(bits);
    }

    /// Number of subarrays.
    pub fn len(&self) -> usize {
        self.subarrays.len()
    }

    /// Whether the image holds no subarrays.
    pub fn is_empty(&self) -> bool {
        self.subarrays.is_empty()
    }

    /// Total stored bits.
    pub fn total_bits(&self) -> u64 {
        (self.subarrays.len() * self.rows * self.cols) as u64
    }

    /// Fraction of '1' (strapped) cells — sparse images can use fewer
    /// contacts, which matters for mask complexity.
    pub fn fill_ratio(&self) -> f64 {
        if self.subarrays.is_empty() {
            return 0.0;
        }
        let ones: u64 = self
            .subarrays
            .iter()
            .map(|s| s.iter().filter(|&&b| b).count() as u64)
            .sum();
        ones as f64 / self.total_bits() as f64
    }

    /// Serializes to the binary format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(
            16 + self.subarrays.len() * (self.rows * self.cols).div_ceil(8),
        );
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        buf.put_u32(self.rows as u32);
        buf.put_u32(self.cols as u32);
        buf.put_u32(self.subarrays.len() as u32);
        let mut checksum: u32 = 0;
        for sub in &self.subarrays {
            let mut byte = 0u8;
            for (i, &b) in sub.iter().enumerate() {
                if b {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    buf.put_u8(byte);
                    checksum = checksum.wrapping_mul(31).wrapping_add(byte as u32);
                    byte = 0;
                }
            }
            if sub.len() % 8 != 0 {
                buf.put_u8(byte);
                checksum = checksum.wrapping_mul(31).wrapping_add(byte as u32);
            }
        }
        buf.put_u32(checksum);
        buf.freeze()
    }

    /// Parses the binary format.
    ///
    /// # Errors
    ///
    /// Returns [`RomImageError`] on truncation, bad magic/version, or a
    /// checksum mismatch.
    pub fn from_bytes(mut data: Bytes) -> Result<Self, RomImageError> {
        if data.remaining() < 18 {
            return Err(err("truncated header"));
        }
        if data.get_u32() != MAGIC {
            return Err(err("bad magic"));
        }
        let version = data.get_u16();
        if version != VERSION {
            return Err(err(format!("unsupported version {version}")));
        }
        let rows = data.get_u32() as usize;
        let cols = data.get_u32() as usize;
        let count = data.get_u32() as usize;
        let bytes_per_sub = (rows * cols).div_ceil(8);
        if data.remaining() < count * bytes_per_sub + 4 {
            return Err(err("truncated payload"));
        }
        let mut subarrays = Vec::with_capacity(count);
        let mut checksum: u32 = 0;
        for _ in 0..count {
            let mut bits = Vec::with_capacity(rows * cols);
            for byte_idx in 0..bytes_per_sub {
                let byte = data.get_u8();
                checksum = checksum.wrapping_mul(31).wrapping_add(byte as u32);
                for bit in 0..8 {
                    let pos = byte_idx * 8 + bit;
                    if pos < rows * cols {
                        bits.push(byte & (1 << bit) != 0);
                    }
                }
            }
            subarrays.push(bits);
        }
        let stored = data.get_u32();
        if stored != checksum {
            return Err(err(format!(
                "checksum mismatch: {stored:#x} vs {checksum:#x}"
            )));
        }
        Ok(RomImage {
            rows,
            cols,
            subarrays,
        })
    }

    /// One-time mask (NRE) cost estimate in arbitrary units normalized to
    /// a 28 nm base mask set: the via/contact layer customizing the ROM is
    /// a single mask, so cost is a base constant plus a weak function of
    /// image size.
    pub fn mask_cost_norm(&self) -> f64 {
        // A single custom contact mask ~2% of a 28 nm mask set, plus data
        // preparation that grows logarithmically with pattern count.
        0.02 + 0.002 * (1.0 + (self.total_bits() as f64).max(1.0).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_image() -> RomImage {
        let mut img = RomImage::new(4, 6);
        img.push_subarray((0..24).map(|i| i % 3 == 0).collect());
        img.push_subarray((0..24).map(|i| i % 2 == 0).collect());
        img
    }

    #[test]
    fn roundtrip() {
        let img = sample_image();
        let bytes = img.to_bytes();
        let back = RomImage::from_bytes(bytes).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn detects_corruption() {
        let img = sample_image();
        let mut raw = img.to_bytes().to_vec();
        let n = raw.len();
        raw[n - 6] ^= 0xFF; // flip payload bits
        assert!(RomImage::from_bytes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(RomImage::from_bytes(Bytes::from_static(b"nope")).is_err());
        let img = sample_image();
        let raw = img.to_bytes();
        let truncated = raw.slice(0..raw.len() - 8);
        assert!(RomImage::from_bytes(truncated).is_err());
    }

    #[test]
    fn fill_ratio() {
        let mut img = RomImage::new(2, 2);
        img.push_subarray(vec![true, false, true, false]);
        assert!((img.fill_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(img.total_bits(), 4);
    }

    #[test]
    fn mask_cost_far_below_full_tapeout() {
        let img = sample_image();
        // The whole point of ROM-CiM: customizing a chip per model costs a
        // contact mask, not a tape-out.
        assert!(img.mask_cost_norm() < 0.1);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            rows in 1usize..9,
            cols in 1usize..17,
            n_subs in 1usize..4,
            seed in 0u64..1000,
        ) {
            let mut img = RomImage::new(rows, cols);
            let mut state = seed;
            for _ in 0..n_subs {
                let bits: Vec<bool> = (0..rows * cols).map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    state >> 63 == 1
                }).collect();
                img.push_subarray(bits);
            }
            let back = RomImage::from_bytes(img.to_bytes()).unwrap();
            prop_assert_eq!(img, back);
        }
    }
}
