//! The AVX-512 kernel tier: 512-bit `std::arch` intrinsics behind safe
//! wrappers, pinned bit-identical to [`super::scalar`].
//!
//! Together with `kernels/avx2.rs` this file is the crate's entire
//! `unsafe` surface, under the same discipline: a safe wrapper asserts
//! the required feature subsets (F + BW + VL + VPOPCNTDQ, see
//! [`super::avx512_available`]), then enters a `#[target_feature]`
//! implementation where only raw-pointer loads/stores need `unsafe`
//! blocks, each carrying its bounds argument.
//!
//! What the extra width buys over the AVX2 tier:
//!
//! * [`matmul_exact`] — 32-lane `_mm512_madd_epi16` matmuls over the
//!   lane-packed `i16` codes (two AVX2 registers of work per op), with
//!   a `_mm512_maskz_loadu_epi16` half-register tail since code rows
//!   are padded to 16, not 32, lanes;
//! * [`matmul_transposed`] — the batch-transposed matmul eating 16
//!   vectors per `_mm512_mullo_epi32`;
//! * [`fold_event_counters`] / [`fold_event_counters_t`] — 16-row /
//!   16-vector event-counter folds; group-activity bitmaps come
//!   straight from `_mm512_cmpgt_epi32_mask` mask registers instead of
//!   the AVX2 `movemask` float-cast dance;
//! * [`group_counts`] — the bit-plane popcount stream with native
//!   `vpopcntq` (`_mm512_popcnt_epi64`), replacing the `vpshufb`
//!   nibble-LUT + `_mm256_sad_epu8` emulation, 8 staged vectors per
//!   step.
//!
//! Shapes outside a kernel's profitable range delegate to the AVX2 or
//! scalar implementations — any host that can select this tier can run
//! both (AVX-512 implies AVX2).

#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::arch::x86_64::{
    __m512i, _mm256_storeu_si256, _mm512_add_epi32, _mm512_add_epi64, _mm512_and_si512,
    _mm512_cmpgt_epi32_mask, _mm512_cvtepi32_epi16, _mm512_loadu_epi16, _mm512_loadu_epi32,
    _mm512_loadu_epi64, _mm512_madd_epi16, _mm512_mask_i32gather_epi32, _mm512_maskz_loadu_epi16,
    _mm512_maskz_set1_epi32, _mm512_mullo_epi32, _mm512_or_si512, _mm512_popcnt_epi64,
    _mm512_set1_epi32, _mm512_set1_epi64, _mm512_setzero_si512, _mm512_sll_epi64, _mm512_srl_epi32,
    _mm512_srli_epi32, _mm512_storeu_epi32, _mm512_storeu_epi64, _mm_cvtsi32_si128,
};

use super::{avx2, scalar, ExactCodes, FoldParams};

/// Vectors staged per cache block of the blocked matmul (matches the
/// AVX2 tier: the staged `i16` rows plus a 4-row code quad stay
/// L1-resident).
const V_BLOCK: usize = 8;

fn assert_avx512() {
    assert!(
        super::avx512_available(),
        "AVX-512 kernel invoked on a host without the required subsets"
    );
}

/// AVX-512 tier of the exact-path batched matmul. Bit-identical to
/// [`scalar::matmul_into`]; the 32-lane madd path requires the same
/// `i16`-eligibility overflow proof as the AVX2 tier and shapes
/// without it (or too small to amortize staging) delegate down.
pub(crate) fn matmul_exact(
    c: &ExactCodes<'_>,
    acts: &[i32],
    n: usize,
    out: &mut [i64],
    acts16: &mut Vec<i16>,
) {
    assert_avx512();
    debug_assert_eq!(acts.len(), n * c.ins);
    debug_assert_eq!(out.len(), n * c.outs);
    if c.outs == 1 && c.ins < 8 {
        scalar::matmul_into(c.codes, c.outs, c.ins, acts, n, out);
    } else if !c.codes16.is_empty() {
        // SAFETY: AVX-512 support asserted above.
        unsafe { matmul_i16(c, acts, n, out, acts16) }
    } else {
        // No overflow proof: the AVX2 tier's `_mm256_mul_epi32`
        // 64-bit-accumulate fallback is already memory-bound; reuse it.
        avx2::matmul_exact(c, acts, n, out, acts16);
    }
}

/// `_mm512_madd_epi16` matmul over the lane-packed `i16` codes: 32
/// multiply-accumulates per op. Code rows are padded to 16 lanes, so a
/// half-register masked load finishes rows where `ins16 % 32 == 16`.
#[target_feature(enable = "avx512f,avx512bw")]
fn matmul_i16(c: &ExactCodes<'_>, acts: &[i32], n: usize, out: &mut [i64], acts16: &mut Vec<i16>) {
    let (ins, ins16, outs) = (c.ins, c.ins16, c.outs);
    debug_assert_eq!(c.codes16.len(), outs * ins16);
    // Stage the block's activations as zero-padded i16 rows (16 lanes
    // narrowed per `_mm512_cvtepi32_epi16`). `clear` first so shorter
    // rows cannot leak stale nonzero padding.
    acts16.clear();
    acts16.resize(n * ins16, 0);
    for v in 0..n {
        let av = &acts[v * ins..(v + 1) * ins];
        let dst = &mut acts16[v * ins16..v * ins16 + ins];
        let mut i = 0;
        while i + 16 <= ins {
            // SAFETY: i + 16 <= ins bounds the 64-byte load; the
            // narrowed 32-byte store lands in dst[i..i + 16].
            unsafe {
                let a = _mm512_loadu_epi32(av.as_ptr().add(i));
                let packed = _mm512_cvtepi32_epi16(a);
                _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut _, packed);
            }
            i += 16;
        }
        for (d, &a) in dst[i..].iter_mut().zip(&av[i..]) {
            *d = a as i16;
        }
    }
    let mut vb = 0;
    while vb < n {
        let vb_end = (vb + V_BLOCK).min(n);
        let mut o = 0;
        while o + 4 <= outs {
            for v in vb..vb_end {
                let av = &acts16[v * ins16..(v + 1) * ins16];
                let mut acc = [_mm512_setzero_si512(); 4];
                let mut i = 0;
                while i + 32 <= ins16 {
                    // SAFETY: i + 32 <= ins16 bounds all five 64-byte
                    // loads (code rows o..o+4 share the stride).
                    unsafe {
                        let a = _mm512_loadu_epi16(av.as_ptr().add(i));
                        for (k, ak) in acc.iter_mut().enumerate() {
                            let w = _mm512_loadu_epi16(c.codes16.as_ptr().add((o + k) * ins16 + i));
                            *ak = _mm512_add_epi32(*ak, _mm512_madd_epi16(a, w));
                        }
                    }
                    i += 32;
                }
                if i < ins16 {
                    // Exactly 16 lanes remain (ins16 is a multiple of
                    // 16); masked loads zero the upper half, which
                    // contributes nothing to the madd.
                    // SAFETY: the low 16 enabled lanes read
                    // av[i..i + 16] / the matching code row lanes, all
                    // in bounds.
                    unsafe {
                        let a = _mm512_maskz_loadu_epi16(0xffff, av.as_ptr().add(i));
                        for (k, ak) in acc.iter_mut().enumerate() {
                            let w = _mm512_maskz_loadu_epi16(
                                0xffff,
                                c.codes16.as_ptr().add((o + k) * ins16 + i),
                            );
                            *ak = _mm512_add_epi32(*ak, _mm512_madd_epi16(a, w));
                        }
                    }
                }
                for (k, ak) in acc.iter().enumerate() {
                    out[v * outs + o + k] = hsum_epi32(*ak);
                }
            }
            o += 4;
        }
        while o < outs {
            for v in vb..vb_end {
                let av = &acts16[v * ins16..(v + 1) * ins16];
                let mut acc = _mm512_setzero_si512();
                let mut i = 0;
                while i + 32 <= ins16 {
                    // SAFETY: i + 32 <= ins16 as above.
                    unsafe {
                        let a = _mm512_loadu_epi16(av.as_ptr().add(i));
                        let w = _mm512_loadu_epi16(c.codes16.as_ptr().add(o * ins16 + i));
                        acc = _mm512_add_epi32(acc, _mm512_madd_epi16(a, w));
                    }
                    i += 32;
                }
                if i < ins16 {
                    // SAFETY: low 16 lanes in bounds as above.
                    unsafe {
                        let a = _mm512_maskz_loadu_epi16(0xffff, av.as_ptr().add(i));
                        let w =
                            _mm512_maskz_loadu_epi16(0xffff, c.codes16.as_ptr().add(o * ins16 + i));
                        acc = _mm512_add_epi32(acc, _mm512_madd_epi16(a, w));
                    }
                }
                out[v * outs + o] = hsum_epi32(acc);
            }
            o += 1;
        }
        vb += V_BLOCK;
    }
}

/// Sums the sixteen `i32` lanes into an `i64`. Per-lane (and any
/// partial) sums are bounded far below `i32::MAX` by the `codes16`
/// eligibility proof, so widening only here is exact.
#[target_feature(enable = "avx512f")]
fn hsum_epi32(v: __m512i) -> i64 {
    let mut lanes = [0i32; 16];
    // SAFETY: `lanes` is exactly 64 bytes; unaligned store.
    unsafe { _mm512_storeu_epi32(lanes.as_mut_ptr(), v) };
    lanes.iter().map(|&x| x as i64).sum()
}

/// AVX-512 tier of the row-major -> lane-major panel repack: one
/// `vpgatherdps`-class gather pulls 16 vectors' codes for an activation
/// index in a single instruction (stride-`ins` offsets), replacing the
/// `16 * ins` strided scalar moves per block that dominate the panel
/// pipeline at small `n`. The tail block uses a masked gather, so no
/// address past `acts[n * ins - 1]` is ever formed; its dead lanes are
/// refreshed to zero (a valid activation code, per the stale-padding
/// contract of the panel kernels). Same panel contents as
/// [`scalar::repack_transposed`] on every live lane.
pub(crate) fn repack_transposed(
    acts: &[i32],
    ins: usize,
    n: usize,
    n_pad: usize,
    acts_t: &mut [i32],
) {
    assert_avx512();
    debug_assert!(acts.len() >= n * ins);
    debug_assert!(n_pad >= n);
    debug_assert_eq!(n_pad % 16, 0, "transposed panels pad to 16 lanes");
    debug_assert!(acts_t.len() >= ins * n_pad);
    debug_assert!(
        ins.saturating_mul(16) < i32::MAX as usize,
        "gather offsets fit i32"
    );
    if n <= 8 {
        // Half-block batches: 256-bit gathers cost roughly half a
        // 512-bit one and the extra padding lanes may stay stale.
        return avx2::repack_transposed(acts, ins, n, n_pad, acts_t);
    }
    // SAFETY: AVX-512 support asserted above.
    unsafe { repack_transposed_impl(acts, ins, n, n_pad, acts_t) }
}

#[target_feature(enable = "avx512f")]
fn repack_transposed_impl(acts: &[i32], ins: usize, n: usize, n_pad: usize, acts_t: &mut [i32]) {
    let mut offs = [0i32; 16];
    for (k, o) in offs.iter_mut().enumerate() {
        *o = (k * ins) as i32;
    }
    // SAFETY: `offs` is exactly 64 bytes.
    let offs = unsafe { _mm512_loadu_epi32(offs.as_ptr()) };
    let zero = _mm512_setzero_si512();
    let mut vb = 0;
    while vb < n {
        let live = (n - vb).min(16);
        let mask = if live == 16 {
            !0u16
        } else {
            (1u16 << live) - 1
        };
        for i in 0..ins {
            // SAFETY: lane k of the gather reads acts[(vb + k) * ins + i];
            // the mask keeps k < live, so every accessed element is below
            // n * ins. Masked-off lanes are architecturally not accessed.
            let g = unsafe {
                _mm512_mask_i32gather_epi32::<4>(zero, mask, offs, acts.as_ptr().add(vb * ins + i))
            };
            // SAFETY: i * n_pad + vb + 16 <= (i + 1) * n_pad since vb and
            // n_pad are multiples of 16 and vb < n <= n_pad.
            unsafe { _mm512_storeu_epi32(acts_t.as_mut_ptr().add(i * n_pad + vb), g) };
        }
        vb += 16;
    }
}

/// AVX-512 tier of the batch-transposed matmul: one 64-byte panel load
/// carries 16 vectors' codes for an activation index, shared across a
/// quad of broadcast code scalars. `i32` lane accumulation is exact
/// under the `codes16` eligibility proof. Bit-identical to
/// [`scalar::matmul_transposed`].
pub(crate) fn matmul_transposed(
    c: &ExactCodes<'_>,
    acts_t: &[i32],
    n: usize,
    n_pad: usize,
    out: &mut [i64],
) {
    assert_avx512();
    assert!(
        !c.codes16.is_empty(),
        "transposed AVX-512 path requires the i16-eligibility overflow proof"
    );
    debug_assert_eq!(n_pad % 16, 0, "transposed panels pad to 16 lanes");
    debug_assert!(n_pad >= n);
    debug_assert!(acts_t.len() >= c.ins * n_pad);
    debug_assert_eq!(out.len(), n * c.outs);
    if n <= 8 {
        // Half-block batches run at AVX2 width: same op count, better
        // per-op throughput, and `i32` lane accumulation stays exact
        // under the identical eligibility proof.
        return avx2::matmul_transposed(c, acts_t, n, n_pad, out);
    }
    // SAFETY: AVX-512 support asserted above.
    unsafe { matmul_transposed_impl(c.codes, c.outs, c.ins, acts_t, n, n_pad, out) }
}

#[target_feature(enable = "avx512f")]
fn matmul_transposed_impl(
    codes: &[i32],
    outs: usize,
    ins: usize,
    acts_t: &[i32],
    n: usize,
    n_pad: usize,
    out: &mut [i64],
) {
    let mut vb = 0;
    while vb < n {
        let lanes_live = (n - vb).min(16);
        let mut o = 0;
        while o + 4 <= outs {
            let mut acc = [_mm512_setzero_si512(); 4];
            for i in 0..ins {
                // SAFETY: vb + 16 <= n_pad (vb < n <= n_pad, both
                // multiples of 16) keeps the 64-byte load inside the
                // panel row.
                let a = unsafe { _mm512_loadu_epi32(acts_t.as_ptr().add(i * n_pad + vb)) };
                for (k, ak) in acc.iter_mut().enumerate() {
                    let w = _mm512_set1_epi32(codes[(o + k) * ins + i]);
                    *ak = _mm512_add_epi32(*ak, _mm512_mullo_epi32(a, w));
                }
            }
            for (k, ak) in acc.iter().enumerate() {
                scatter_widened(*ak, &mut out[vb * outs..], outs, o + k, lanes_live);
            }
            o += 4;
        }
        while o < outs {
            let mut acc = _mm512_setzero_si512();
            for i in 0..ins {
                // SAFETY: as above.
                let a = unsafe { _mm512_loadu_epi32(acts_t.as_ptr().add(i * n_pad + vb)) };
                let w = _mm512_set1_epi32(codes[o * ins + i]);
                acc = _mm512_add_epi32(acc, _mm512_mullo_epi32(a, w));
            }
            scatter_widened(acc, &mut out[vb * outs..], outs, o, lanes_live);
            o += 1;
        }
        vb += 16;
    }
}

/// Writes the 16 `i32` lanes of one transposed accumulator to their
/// row-major output slots, widening to `i64` (exact by the eligibility
/// proof).
#[target_feature(enable = "avx512f")]
fn scatter_widened(acc: __m512i, out: &mut [i64], outs: usize, o: usize, lanes_live: usize) {
    let mut lanes = [0i32; 16];
    // SAFETY: `lanes` is exactly 64 bytes; unaligned store.
    unsafe { _mm512_storeu_epi32(lanes.as_mut_ptr(), acc) };
    for (v, &x) in lanes[..lanes_live].iter().enumerate() {
        out[v * outs + o] = x as i64;
    }
}

/// AVX-512 tier of the row-major event-counter fold: chunk sums
/// accumulate 16 rows per step and per-chunk nonzero bitmaps come
/// straight from `_mm512_cmpgt_epi32_mask` mask registers. Accumulates
/// into `counters` exactly like [`scalar::fold_event_counters`].
pub(crate) fn fold_event_counters(
    acts: &[i32],
    ins: usize,
    n: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
    bitmaps: &mut Vec<u64>,
) {
    assert_avx512();
    debug_assert!(p.n_chunks <= 4, "vector fold handles at most 4 chunks");
    // SAFETY: AVX-512 support asserted above.
    unsafe { fold_impl(acts, ins, n, p, counters, bitmaps) }
}

#[target_feature(enable = "avx512f")]
fn fold_impl(
    acts: &[i32],
    ins: usize,
    n: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
    bitmaps: &mut Vec<u64>,
) {
    debug_assert_eq!(counters.len(), n);
    debug_assert_eq!(acts.len(), n * ins);
    let chunk_mask = (1u32 << p.chunk_bits) - 1;
    let n_words = ins.div_ceil(64).max(1);
    bitmaps.clear();
    bitmaps.resize(p.n_chunks * n_words, 0);
    let mask_v = _mm512_set1_epi32(chunk_mask as i32);
    let zero = _mm512_setzero_si512();
    for (v, c) in counters.iter_mut().enumerate() {
        let av = &acts[v * ins..(v + 1) * ins];
        bitmaps.fill(0);
        let mut sum_acc = [zero; 4];
        let mut i = 0;
        while i + 16 <= ins {
            // SAFETY: i + 16 <= ins == av.len(); unaligned 64-byte load.
            let a = unsafe { _mm512_loadu_epi32(av.as_ptr().add(i)) };
            for (ci, acc) in sum_acc[..p.n_chunks].iter_mut().enumerate() {
                let shift = _mm_cvtsi32_si128((ci as u32 * p.chunk_bits as u32) as i32);
                let pulses = _mm512_and_si512(_mm512_srl_epi32(a, shift), mask_v);
                *acc = _mm512_add_epi32(*acc, pulses);
                // Validated activation codes are non-negative, so
                // greater-than-zero is a nonzero test; the mask
                // register *is* the 16-bit activity bitmap.
                let m = _mm512_cmpgt_epi32_mask(pulses, zero) as u64;
                // i is 16-aligned, so the fresh bits stay in one word.
                bitmaps[ci * n_words + i / 64] |= m << (i % 64);
            }
            i += 16;
        }
        let mut sums = [0u64; 4];
        for (ci, s) in sums[..p.n_chunks].iter_mut().enumerate() {
            let mut lanes = [0i32; 16];
            // SAFETY: `lanes` is exactly 64 bytes; unaligned store.
            unsafe { _mm512_storeu_epi32(lanes.as_mut_ptr(), sum_acc[ci]) };
            *s = lanes.iter().map(|&x| x as u64).sum();
        }
        for (j, &a) in av.iter().enumerate().skip(i) {
            let a = a as u32;
            for (ci, s) in sums[..p.n_chunks].iter_mut().enumerate() {
                let pulse = (a >> (ci as u32 * p.chunk_bits as u32)) & chunk_mask;
                if pulse != 0 {
                    *s += pulse as u64;
                    bitmaps[ci * n_words + j / 64] |= 1u64 << (j % 64);
                }
            }
        }
        let mut total = 0u64;
        let mut active = 0u64;
        for ci in 0..p.n_chunks {
            total += sums[ci];
            let bm = &bitmaps[ci * n_words..(ci + 1) * n_words];
            for &(lo, hi) in p.group_bounds {
                let (mut j, hi) = (lo as usize, hi as usize);
                let mut any = 0u64;
                while j < hi {
                    let span = (hi - j).min(64 - j % 64);
                    let m = if span == 64 {
                        !0u64
                    } else {
                        ((1u64 << span) - 1) << (j % 64)
                    };
                    any |= bm[j / 64] & m;
                    j += span;
                }
                active += (any != 0) as u64;
            }
        }
        c[0] += active * p.col_tiles;
        c[1] += active * p.cols * p.col_tiles;
        c[2] += total * p.col_tiles;
    }
}

/// AVX-512 tier of the batch-transposed event-counter fold: per-chunk
/// pulse totals and active-group counts for 16 vectors at once, the
/// activity increment applied through a `_mm512_maskz_set1_epi32` of
/// the compare mask. Bit-identical to
/// [`scalar::fold_event_counters_t`].
pub(crate) fn fold_event_counters_t(
    acts_t: &[i32],
    ins: usize,
    n: usize,
    n_pad: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
) {
    assert_avx512();
    debug_assert!(p.n_chunks <= 4, "vector fold handles at most 4 chunks");
    debug_assert_eq!(n_pad % 16, 0, "transposed panels pad to 16 lanes");
    debug_assert!(n_pad >= n);
    debug_assert!(acts_t.len() >= ins * n_pad);
    debug_assert_eq!(counters.len(), n);
    if n <= 8 {
        // A batch this small fills at most half a 512-bit block; the
        // AVX2 walk does the same op count at better per-op throughput.
        return avx2::fold_event_counters_t(acts_t, ins, n, n_pad, p, counters);
    }
    // SAFETY: AVX-512 support asserted above.
    unsafe { fold_t_impl(acts_t, ins, n, n_pad, p, counters) }
}

#[target_feature(enable = "avx512f")]
fn fold_t_impl(
    acts_t: &[i32],
    _ins: usize,
    n: usize,
    n_pad: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
) {
    if p.chunk_bits == 2 && p.n_chunks == 4 {
        return fold_t_design_point(acts_t, n, n_pad, p, counters);
    }
    let chunk_mask = (1u32 << p.chunk_bits) - 1;
    let mask_v = _mm512_set1_epi32(chunk_mask as i32);
    let zero = _mm512_setzero_si512();
    let mut shifts = [_mm_cvtsi32_si128(0); 4];
    for (ci, s) in shifts[..p.n_chunks].iter_mut().enumerate() {
        *s = _mm_cvtsi32_si128((ci as u32 * p.chunk_bits as u32) as i32);
    }
    let mut vb = 0;
    while vb < n {
        let lanes_live = (n - vb).min(16);
        let mut tot_acc = [zero; 4];
        let mut act_acc = [zero; 4];
        for &(lo, hi) in p.group_bounds {
            let mut group_or = zero;
            for i in lo as usize..hi as usize {
                // SAFETY: vb + 16 <= n_pad (vb < n <= n_pad, both
                // multiples of 16) keeps the 64-byte load inside the
                // panel row.
                let a = unsafe { _mm512_loadu_epi32(acts_t.as_ptr().add(i * n_pad + vb)) };
                group_or = _mm512_or_si512(group_or, a);
                for (acc, &shift) in tot_acc[..p.n_chunks].iter_mut().zip(&shifts) {
                    let pulses = _mm512_and_si512(_mm512_srl_epi32(a, shift), mask_v);
                    *acc = _mm512_add_epi32(*acc, pulses);
                }
            }
            for (acc, &shift) in act_acc[..p.n_chunks].iter_mut().zip(&shifts) {
                let field = _mm512_and_si512(_mm512_srl_epi32(group_or, shift), mask_v);
                let m = _mm512_cmpgt_epi32_mask(field, zero);
                *acc = _mm512_add_epi32(*acc, _mm512_maskz_set1_epi32(m, 1));
            }
        }
        // Fold the per-chunk accumulators in-register before the lane
        // extraction (the caller's eligibility gate bounds the summed
        // totals below `i32::MAX`): one store per quantity, and the
        // scalar tail is three multiply-adds per vector.
        let mut tot = zero;
        let mut act = zero;
        for ci in 0..p.n_chunks {
            tot = _mm512_add_epi32(tot, tot_acc[ci]);
            act = _mm512_add_epi32(act, act_acc[ci]);
        }
        let mut tot_lanes = [0i32; 16];
        let mut act_lanes = [0i32; 16];
        // SAFETY: each destination is exactly 64 bytes; unaligned
        // stores.
        unsafe {
            _mm512_storeu_epi32(tot_lanes.as_mut_ptr(), tot);
            _mm512_storeu_epi32(act_lanes.as_mut_ptr(), act);
        }
        for (v, c) in counters[vb..vb + lanes_live].iter_mut().enumerate() {
            let active = act_lanes[v] as u64;
            let total = tot_lanes[v] as u64;
            c[0] += active * p.col_tiles;
            c[1] += active * p.cols * p.col_tiles;
            c[2] += total * p.col_tiles;
        }
        vb += 16;
    }
}

/// Design-point specialization of the transposed fold (`chunk_bits = 2`,
/// `n_chunks = 4`, i.e. 8-bit codes split into four 2-bit pulse fields):
/// the per-chunk extract/add cascade collapses into a sideways field sum
/// with immediate shifts — `(a & 0x33) + ((a >> 2) & 0x33)` pairs the
/// fields into two nibbles, one more fold adds the nibbles — feeding a
/// single pulse-total accumulator. Reads exactly bits 0..8 of each code,
/// the same bits the generic chunk walk extracts, so it stays
/// bit-identical for any input.
#[target_feature(enable = "avx512f")]
fn fold_t_design_point(
    acts_t: &[i32],
    n: usize,
    n_pad: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
) {
    let pair_mask = _mm512_set1_epi32(0x33);
    let nib_mask = _mm512_set1_epi32(0x0F);
    let chunk_mask = _mm512_set1_epi32(0x3);
    let zero = _mm512_setzero_si512();
    let mut vb = 0;
    while vb < n {
        let lanes_live = (n - vb).min(16);
        let mut tot = zero;
        let mut act = zero;
        for &(lo, hi) in p.group_bounds {
            let mut group_or = zero;
            for i in lo as usize..hi as usize {
                // SAFETY: vb + 16 <= n_pad (vb < n <= n_pad, both
                // multiples of 16) keeps the 64-byte load inside the
                // panel row.
                let a = unsafe { _mm512_loadu_epi32(acts_t.as_ptr().add(i * n_pad + vb)) };
                group_or = _mm512_or_si512(group_or, a);
                let pairs = _mm512_add_epi32(
                    _mm512_and_si512(a, pair_mask),
                    _mm512_and_si512(_mm512_srli_epi32::<2>(a), pair_mask),
                );
                // `pairs` is at most 0x66 per lane, so the high shift
                // needs no mask.
                let pulses = _mm512_add_epi32(
                    _mm512_and_si512(pairs, nib_mask),
                    _mm512_srli_epi32::<4>(pairs),
                );
                tot = _mm512_add_epi32(tot, pulses);
            }
            let mut fields = group_or;
            for _ in 0..4 {
                let field = _mm512_and_si512(fields, chunk_mask);
                let m = _mm512_cmpgt_epi32_mask(field, zero);
                act = _mm512_add_epi32(act, _mm512_maskz_set1_epi32(m, 1));
                fields = _mm512_srli_epi32::<2>(fields);
            }
        }
        let mut tot_lanes = [0i32; 16];
        let mut act_lanes = [0i32; 16];
        // SAFETY: each destination is exactly 64 bytes; unaligned
        // stores.
        unsafe {
            _mm512_storeu_epi32(tot_lanes.as_mut_ptr(), tot);
            _mm512_storeu_epi32(act_lanes.as_mut_ptr(), act);
        }
        for (v, c) in counters[vb..vb + lanes_live].iter_mut().enumerate() {
            let active = act_lanes[v] as u64;
            let total = tot_lanes[v] as u64;
            c[0] += active * p.col_tiles;
            c[1] += active * p.cols * p.col_tiles;
            c[2] += total * p.col_tiles;
        }
        vb += 16;
    }
}

/// AVX-512 tier of the bit-plane popcount stream: the column mask is
/// broadcast and `AND`ed against eight vectors' staged planes per step
/// and popcounted with native `vpopcntq`, the nibble-LUT emulation
/// gone. Plane significance is applied with a single variable shift
/// while still vectorized.
pub(crate) fn group_counts(
    mask: u64,
    planes: &[u64],
    n_planes: usize,
    n_pad: usize,
    counts: &mut [u64],
) {
    assert_avx512();
    debug_assert_eq!(n_pad % 8, 0, "staging layout must pad to 8 lanes");
    debug_assert!(planes.len() >= n_planes * n_pad);
    debug_assert_eq!(counts.len(), n_pad);
    // SAFETY: AVX-512 support asserted above.
    unsafe { group_counts_impl(mask, planes, n_planes, n_pad, counts) }
}

#[target_feature(enable = "avx512f,avx512vpopcntdq")]
fn group_counts_impl(mask: u64, planes: &[u64], n_planes: usize, n_pad: usize, counts: &mut [u64]) {
    if n_planes == 0 {
        counts.fill(0);
        return;
    }
    let mask_v = _mm512_set1_epi64(mask as i64);
    let mut v = 0;
    while v < n_pad {
        let mut acc = _mm512_setzero_si512();
        for b in 0..n_planes {
            // SAFETY: v + 8 <= n_pad and b < n_planes keep the 64-byte
            // load inside `planes[..n_planes * n_pad]` (checked by the
            // wrapper); unaligned load.
            let pl =
                unsafe { _mm512_loadu_epi64(planes.as_ptr().add(b * n_pad + v) as *const i64) };
            let pops = _mm512_popcnt_epi64(_mm512_and_si512(pl, mask_v));
            acc = _mm512_add_epi64(acc, _mm512_sll_epi64(pops, _mm_cvtsi32_si128(b as i32)));
        }
        // SAFETY: v + 8 <= n_pad == counts.len(); unaligned store.
        unsafe { _mm512_storeu_epi64(counts.as_mut_ptr().add(v) as *mut i64, acc) };
        v += 8;
    }
}
