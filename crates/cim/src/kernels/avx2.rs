//! The AVX2 kernel tier: `std::arch` x86_64 intrinsics behind safe
//! wrappers, pinned bit-identical to [`super::scalar`].
//!
//! This file is the crate's entire `unsafe` surface. Every function here
//! is structured the same way: a safe wrapper asserts AVX2 support, then
//! enters a `#[target_feature(enable = "avx2")]` implementation; inside,
//! only the raw-pointer loads/stores need `unsafe` blocks (arithmetic
//! intrinsics are safe once the feature is statically enabled on the
//! enclosing function), and each carries its bounds argument.
//!
//! Three kernels live here:
//!
//! * [`matmul_exact`] — the exact-path integer matmul, cache-blocked
//!   (8 vectors x 4 output rows per block so both the staged `i16`
//!   activations and the code-row quad stay L1-resident), using
//!   `_mm256_madd_epi16` on the lane-packed `i16` codes when the design
//!   point makes 32-bit accumulation overflow-safe, and a
//!   `_mm256_mul_epi32` 64-bit-accumulate fallback otherwise;
//! * [`fold_event_counters`] — the event-counter fold, computing all
//!   chunk sums 8 rows at a time and deriving group activity from
//!   per-chunk nonzero bitmaps built with `_mm256_movemask_ps`;
//! * [`group_counts`] — the bit-plane popcount stream: one stored column
//!   mask `AND`ed against four vectors' staged pulse planes at once,
//!   popcounted with the `vpshufb` nibble-LUT + `_mm256_sad_epu8` trick.

#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::arch::x86_64::{
    __m256i, _mm256_add_epi32, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256,
    _mm256_castsi256_ps, _mm256_cmpgt_epi32, _mm256_hadd_epi32, _mm256_loadu_si256,
    _mm256_madd_epi16, _mm256_movemask_ps, _mm256_mul_epi32, _mm256_packs_epi32,
    _mm256_permute4x64_epi64, _mm256_sad_epu8, _mm256_set1_epi32, _mm256_set1_epi64x,
    _mm256_set1_epi8, _mm256_setr_epi8, _mm256_setzero_si256, _mm256_shuffle_epi8,
    _mm256_sll_epi64, _mm256_srl_epi32, _mm256_srli_epi16, _mm256_srli_epi64, _mm256_storeu_si256,
    _mm_cvtsi32_si128,
};

use super::{scalar, ExactCodes, FoldParams};

/// Vectors staged per cache block of the blocked matmuls: 8 activation
/// rows of `i16` codes stay well inside L1 alongside a 4-row code quad.
const V_BLOCK: usize = 8;

fn assert_avx2() {
    assert!(
        super::avx2_available(),
        "AVX2 kernel invoked on a host without AVX2"
    );
}

/// AVX2 tier of the exact-path batched matmul. Bit-identical to
/// [`scalar::matmul_into`]: integer arithmetic only, and the `i16` path
/// is used only when `program` proved 32-bit accumulation cannot
/// overflow (8-bit codes, 8-bit acts, `ins <= 32768`).
pub(crate) fn matmul_exact(
    c: &ExactCodes<'_>,
    acts: &[i32],
    n: usize,
    out: &mut [i64],
    acts16: &mut Vec<i16>,
) {
    assert_avx2();
    debug_assert_eq!(acts.len(), n * c.ins);
    debug_assert_eq!(out.len(), n * c.outs);
    if c.outs == 1 && c.ins < 8 {
        // One madd row can't amortize the i16 staging below 8 inputs;
        // the scalar reference is bit-identical, so this is pure
        // heuristics.
        scalar::matmul_into(c.codes, c.outs, c.ins, acts, n, out);
    } else if !c.codes16.is_empty() {
        // SAFETY: AVX2 support asserted above.
        unsafe { matmul_i16(c, acts, n, out, acts16) }
    } else {
        // SAFETY: AVX2 support asserted above.
        unsafe { matmul_i32(c.codes, c.outs, c.ins, acts, n, out) }
    }
}

/// `_mm256_madd_epi16` matmul over the lane-packed `i16` codes.
#[target_feature(enable = "avx2")]
fn matmul_i16(c: &ExactCodes<'_>, acts: &[i32], n: usize, out: &mut [i64], acts16: &mut Vec<i16>) {
    let (ins, ins16, outs) = (c.ins, c.ins16, c.outs);
    debug_assert_eq!(c.codes16.len(), outs * ins16);
    // Stage the block's activations as zero-padded i16 rows. `clear`
    // first so rows shorter than a previous caller's cannot leak stale
    // nonzero padding into the dot products.
    acts16.clear();
    acts16.resize(n * ins16, 0);
    for v in 0..n {
        let av = &acts[v * ins..(v + 1) * ins];
        let dst = &mut acts16[v * ins16..v * ins16 + ins];
        let mut i = 0;
        while i + 16 <= ins {
            // SAFETY: i + 16 <= ins keeps both 32-byte loads and the
            // 32-byte store inside `av` / `dst`; unaligned ops.
            unsafe {
                let a0 = _mm256_loadu_si256(av.as_ptr().add(i) as *const __m256i);
                let a1 = _mm256_loadu_si256(av.as_ptr().add(i + 8) as *const __m256i);
                // packs interleaves 128-bit halves; the permute restores
                // element order. No saturation: codes16 exists only when
                // activations fit 8 unsigned bits.
                let packed = _mm256_permute4x64_epi64(_mm256_packs_epi32(a0, a1), 0b11011000);
                _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, packed);
            }
            i += 16;
        }
        for (d, &a) in dst[i..].iter_mut().zip(&av[i..]) {
            *d = a as i16;
        }
    }
    // Cache-blocked nest: one V_BLOCK x 4 tile of outputs at a time, so
    // the four code rows stream from L1 against every staged activation
    // row of the block.
    let mut vb = 0;
    while vb < n {
        let vb_end = (vb + V_BLOCK).min(n);
        let mut o = 0;
        while o + 4 <= outs {
            for v in vb..vb_end {
                let av = &acts16[v * ins16..(v + 1) * ins16];
                let mut acc = [_mm256_setzero_si256(); 4];
                let mut i = 0;
                while i < ins16 {
                    // SAFETY: ins16 is a multiple of 16, so i + 16 <=
                    // ins16 bounds all five 32-byte loads (codes16 rows
                    // o..o+4 and the activation row share that stride).
                    unsafe {
                        let a = _mm256_loadu_si256(av.as_ptr().add(i) as *const __m256i);
                        for (k, ak) in acc.iter_mut().enumerate() {
                            let w = _mm256_loadu_si256(
                                c.codes16.as_ptr().add((o + k) * ins16 + i) as *const __m256i
                            );
                            *ak = _mm256_add_epi32(*ak, _mm256_madd_epi16(a, w));
                        }
                    }
                    i += 16;
                }
                for (k, ak) in acc.iter().enumerate() {
                    out[v * outs + o + k] = hsum_epi32(*ak);
                }
            }
            o += 4;
        }
        while o < outs {
            for v in vb..vb_end {
                let av = &acts16[v * ins16..(v + 1) * ins16];
                let mut acc = _mm256_setzero_si256();
                let mut i = 0;
                while i < ins16 {
                    // SAFETY: i + 16 <= ins16 as above.
                    unsafe {
                        let a = _mm256_loadu_si256(av.as_ptr().add(i) as *const __m256i);
                        let w = _mm256_loadu_si256(
                            c.codes16.as_ptr().add(o * ins16 + i) as *const __m256i
                        );
                        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a, w));
                    }
                    i += 16;
                }
                out[v * outs + o] = hsum_epi32(acc);
            }
            o += 1;
        }
        vb += V_BLOCK;
    }
}

/// Sums the eight `i32` lanes into an `i64`. Per-lane partial sums are
/// bounded far below `i32::MAX` (see the `codes16` eligibility proof),
/// so widening only at the horizontal step is exact.
#[target_feature(enable = "avx2")]
fn hsum_epi32(v: __m256i) -> i64 {
    let mut lanes = [0i32; 8];
    // SAFETY: `lanes` is exactly 32 bytes; unaligned store.
    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v) };
    lanes.iter().map(|&x| x as i64).sum()
}

/// `_mm256_mul_epi32` matmul with 64-bit accumulation — the general
/// fallback when the `i16` overflow proof does not hold.
#[target_feature(enable = "avx2")]
fn matmul_i32(codes: &[i32], outs: usize, ins: usize, acts: &[i32], n: usize, out: &mut [i64]) {
    let mut vb = 0;
    while vb < n {
        let vb_end = (vb + V_BLOCK).min(n);
        let mut o = 0;
        while o + 4 <= outs {
            for v in vb..vb_end {
                let av = &acts[v * ins..(v + 1) * ins];
                let quad = dot4_i32(codes, o, ins, av);
                out[v * outs + o..v * outs + o + 4].copy_from_slice(&quad);
            }
            o += 4;
        }
        while o < outs {
            for v in vb..vb_end {
                let av = &acts[v * ins..(v + 1) * ins];
                out[v * outs + o] = codes[o * ins..(o + 1) * ins]
                    .iter()
                    .zip(av)
                    .map(|(&w, &a)| w as i64 * a as i64)
                    .sum();
            }
            o += 1;
        }
        vb += V_BLOCK;
    }
}

/// Four consecutive code-row dot products sharing one activation load.
/// Even/odd 32-bit lanes are multiplied separately (`_mm256_mul_epi32`
/// sign-extends the low half of each 64-bit lane) and accumulated in
/// 64 bits, so no overflow is possible for any `i32` inputs.
#[target_feature(enable = "avx2")]
fn dot4_i32(codes: &[i32], o: usize, ins: usize, av: &[i32]) -> [i64; 4] {
    let mut acc = [_mm256_setzero_si256(); 4];
    let mut i = 0;
    while i + 8 <= ins {
        // SAFETY: i + 8 <= ins bounds the activation load and, with the
        // caller's `o + 4 <= outs`, the four code-row loads.
        unsafe {
            let a = _mm256_loadu_si256(av.as_ptr().add(i) as *const __m256i);
            let a_hi = _mm256_srli_epi64(a, 32);
            for (k, ak) in acc.iter_mut().enumerate() {
                let w = _mm256_loadu_si256(codes.as_ptr().add((o + k) * ins + i) as *const __m256i);
                let w_hi = _mm256_srli_epi64(w, 32);
                let lo = _mm256_mul_epi32(a, w);
                let hi = _mm256_mul_epi32(a_hi, w_hi);
                *ak = _mm256_add_epi64(*ak, _mm256_add_epi64(lo, hi));
            }
        }
        i += 8;
    }
    let mut quad = [0i64; 4];
    for (k, (slot, ak)) in quad.iter_mut().zip(&acc).enumerate() {
        let mut lanes = [0i64; 4];
        // SAFETY: `lanes` is exactly 32 bytes; unaligned store.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, *ak) };
        *slot = lanes.iter().sum();
        for (w, a) in codes[(o + k) * ins + i..(o + k + 1) * ins]
            .iter()
            .zip(&av[i..])
        {
            *slot += *w as i64 * *a as i64;
        }
    }
    quad
}

/// `CHUNK_SPREAD_LUT[a]` holds the four 2-bit chunk fields of the 8-bit
/// activation code `a`, each spread into its own 16-bit lane of a `u64`
/// — so the small-shape fold accumulates all four per-chunk sums with a
/// single table load and one 64-bit add per activation.
const fn build_chunk_spread_lut() -> [u64; 256] {
    let mut lut = [0u64; 256];
    let mut a = 0usize;
    while a < 256 {
        let mut b = 0;
        while b < 4 {
            lut[a] |= (((a >> (2 * b)) & 0x3) as u64) << (16 * b);
            b += 1;
        }
        a += 1;
    }
    lut
}
static CHUNK_SPREAD_LUT: [u64; 256] = build_chunk_spread_lut();

/// Small-`ins` event-counter fold of the AVX2 tier, for the paper
/// chunking (`chunk_bits = 2`, 4 chunks, so codes fit 8 bits). Below
/// the vector fold's cutover the per-row work is too small to amortize
/// lane reductions, but the shift-and-mask chunk extraction of the
/// scalar reference (4 shift+mask+add per activation) still dominates;
/// this variant replaces it with one [`CHUNK_SPREAD_LUT`] load and one
/// add. Each 16-bit lane accumulates at most `3 * ins`, so the packing
/// is exact for the `ins < 64` shapes this path is gated to.
/// Bit-identical to [`scalar::fold_event_counters`]: identical integer
/// sums, identical group-activity predicate, identical counter updates.
pub(crate) fn fold_event_counters_small(
    acts: &[i32],
    ins: usize,
    n: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
) {
    debug_assert!(p.chunk_bits == 2 && p.n_chunks == 4);
    debug_assert!(ins <= 21845, "16-bit spread lanes hold at most 3 * 21845");
    debug_assert_eq!(counters.len(), n);
    debug_assert_eq!(acts.len(), n * ins);
    for (v, c) in counters.iter_mut().enumerate() {
        let av = &acts[v * ins..(v + 1) * ins];
        let mut active = 0u64;
        let mut tot = 0u64;
        for &(lo, hi) in p.group_bounds {
            let mut group_or = 0u32;
            for &a in &av[lo as usize..hi as usize] {
                group_or |= a as u32;
                tot += CHUNK_SPREAD_LUT[a as usize];
            }
            for ci in 0..4u32 {
                active += (((group_or >> (2 * ci)) & 0x3) != 0) as u64;
            }
        }
        let total = (tot & 0xffff) + ((tot >> 16) & 0xffff) + ((tot >> 32) & 0xffff) + (tot >> 48);
        c[0] += active * p.col_tiles;
        c[1] += active * p.cols * p.col_tiles;
        c[2] += total * p.col_tiles;
    }
}

/// AVX2 tier of the event-counter fold: all chunk sums accumulate 8
/// rows per step, and group activity is answered from per-chunk nonzero
/// bitmaps instead of a second walk. Accumulates into `counters`
/// exactly like [`scalar::fold_event_counters`].
pub(crate) fn fold_event_counters(
    acts: &[i32],
    ins: usize,
    n: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
    bitmaps: &mut Vec<u64>,
) {
    assert_avx2();
    debug_assert!(p.n_chunks <= 4, "vector fold handles at most 4 chunks");
    // SAFETY: AVX2 support asserted above.
    unsafe { fold_impl(acts, ins, n, p, counters, bitmaps) }
}

#[target_feature(enable = "avx2")]
fn fold_impl(
    acts: &[i32],
    ins: usize,
    n: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
    bitmaps: &mut Vec<u64>,
) {
    debug_assert_eq!(counters.len(), n);
    debug_assert_eq!(acts.len(), n * ins);
    let chunk_mask = (1u32 << p.chunk_bits) - 1;
    let n_words = ins.div_ceil(64).max(1);
    bitmaps.clear();
    bitmaps.resize(p.n_chunks * n_words, 0);
    let mask_v = _mm256_set1_epi32(chunk_mask as i32);
    let zero = _mm256_setzero_si256();
    for (v, c) in counters.iter_mut().enumerate() {
        let av = &acts[v * ins..(v + 1) * ins];
        bitmaps.fill(0);
        let mut sum_acc = [zero; 4];
        let mut i = 0;
        while i + 8 <= ins {
            // SAFETY: i + 8 <= ins == av.len(); unaligned 32-byte load.
            let a = unsafe { _mm256_loadu_si256(av.as_ptr().add(i) as *const __m256i) };
            for (ci, acc) in sum_acc[..p.n_chunks].iter_mut().enumerate() {
                let shift = _mm_cvtsi32_si128((ci as u32 * p.chunk_bits as u32) as i32);
                let pulses = _mm256_and_si256(_mm256_srl_epi32(a, shift), mask_v);
                *acc = _mm256_add_epi32(*acc, pulses);
                // Validated activation codes are non-negative, so a
                // signed greater-than-zero test is a nonzero test.
                let nz = _mm256_cmpgt_epi32(pulses, zero);
                let m = _mm256_movemask_ps(_mm256_castsi256_ps(nz)) as u32 as u64;
                // i is 8-aligned, so the 8 fresh bits stay in one word.
                bitmaps[ci * n_words + i / 64] |= m << (i % 64);
            }
            i += 8;
        }
        // Two hadd pairs fold the four accumulators into one vector
        // laid out [c0 c1 c2 c3 | c0 c1 c2 c3].
        let s01 = _mm256_hadd_epi32(sum_acc[0], sum_acc[1]);
        let s23 = _mm256_hadd_epi32(sum_acc[2], sum_acc[3]);
        let s = _mm256_hadd_epi32(s01, s23);
        let mut lanes = [0i32; 8];
        // SAFETY: `lanes` is exactly 32 bytes; unaligned store.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, s) };
        let mut sums = [0u64; 4];
        for (ci, s) in sums.iter_mut().enumerate() {
            *s = (lanes[ci] + lanes[4 + ci]) as u64;
        }
        for (j, &a) in av.iter().enumerate().skip(i) {
            let a = a as u32;
            for (ci, s) in sums[..p.n_chunks].iter_mut().enumerate() {
                let pulse = (a >> (ci as u32 * p.chunk_bits as u32)) & chunk_mask;
                if pulse != 0 {
                    *s += pulse as u64;
                    bitmaps[ci * n_words + j / 64] |= 1u64 << (j % 64);
                }
            }
        }
        let mut total = 0u64;
        let mut active = 0u64;
        for ci in 0..p.n_chunks {
            total += sums[ci];
            let bm = &bitmaps[ci * n_words..(ci + 1) * n_words];
            for &(lo, hi) in p.group_bounds {
                let (mut j, hi) = (lo as usize, hi as usize);
                let mut any = 0u64;
                while j < hi {
                    let span = (hi - j).min(64 - j % 64);
                    let m = if span == 64 {
                        !0u64
                    } else {
                        ((1u64 << span) - 1) << (j % 64)
                    };
                    any |= bm[j / 64] & m;
                    j += span;
                }
                active += (any != 0) as u64;
            }
        }
        c[0] += active * p.col_tiles;
        c[1] += active * p.cols * p.col_tiles;
        c[2] += total * p.col_tiles;
    }
}

/// AVX2 tier of the bit-plane popcount stream: the column mask is
/// broadcast and `AND`ed against four vectors' staged planes per step,
/// popcounted via the `vpshufb` nibble LUT and `_mm256_sad_epu8`, and
/// weighted by plane significance with a single variable shift.
pub(crate) fn group_counts(
    mask: u64,
    planes: &[u64],
    n_planes: usize,
    n_pad: usize,
    counts: &mut [u64],
) {
    assert_avx2();
    debug_assert_eq!(n_pad % 4, 0, "staging layout must pad to 4 lanes");
    debug_assert!(planes.len() >= n_planes * n_pad);
    debug_assert_eq!(counts.len(), n_pad);
    // SAFETY: AVX2 support asserted above.
    unsafe { group_counts_impl(mask, planes, n_planes, n_pad, counts) }
}

#[target_feature(enable = "avx2")]
fn group_counts_impl(mask: u64, planes: &[u64], n_planes: usize, n_pad: usize, counts: &mut [u64]) {
    if n_planes == 0 {
        counts.fill(0);
        return;
    }
    // Per-byte popcounts of the low/high nibbles, summed, then reduced
    // to per-64-bit-lane totals by summing bytes against zero.
    #[rustfmt::skip]
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_nibble = _mm256_set1_epi8(0x0f);
    let zero = _mm256_setzero_si256();
    let mask_v = _mm256_set1_epi64x(mask as i64);
    let mut v = 0;
    while v < n_pad {
        let mut acc = zero;
        for b in 0..n_planes {
            // SAFETY: v + 4 <= n_pad and b < n_planes keep the 32-byte
            // load inside `planes[..n_planes * n_pad]` (checked by the
            // wrapper); unaligned load.
            let pl =
                unsafe { _mm256_loadu_si256(planes.as_ptr().add(b * n_pad + v) as *const __m256i) };
            let x = _mm256_and_si256(pl, mask_v);
            let lo = _mm256_and_si256(x, low_nibble);
            let hi = _mm256_and_si256(_mm256_srli_epi16(x, 4), low_nibble);
            let pops = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
            let lane_counts = _mm256_sad_epu8(pops, zero);
            // Weight this plane by 2^b while still vectorized.
            acc = _mm256_add_epi64(
                acc,
                _mm256_sll_epi64(lane_counts, _mm_cvtsi32_si128(b as i32)),
            );
        }
        // SAFETY: v + 4 <= n_pad == counts.len(); unaligned store.
        unsafe { _mm256_storeu_si256(counts.as_mut_ptr().add(v) as *mut __m256i, acc) };
        v += 4;
    }
}
