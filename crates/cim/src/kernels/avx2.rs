//! The AVX2 kernel tier: `std::arch` x86_64 intrinsics behind safe
//! wrappers, pinned bit-identical to [`super::scalar`].
//!
//! This file and `kernels/avx512.rs` are the crate's entire `unsafe`
//! surface. Every function here is structured the same way: a safe
//! wrapper asserts AVX2 support, then enters a
//! `#[target_feature(enable = "avx2")]` implementation; inside, only
//! the raw-pointer loads/stores need `unsafe` blocks (arithmetic
//! intrinsics are safe once the feature is statically enabled on the
//! enclosing function), and each carries its bounds argument.
//!
//! The kernels:
//!
//! * [`matmul_exact`] — the row-major exact-path integer matmul,
//!   cache-blocked (8 vectors x 4 output rows per block so both the
//!   staged `i16` activations and the code-row quad stay L1-resident),
//!   using `_mm256_madd_epi16` on the lane-packed `i16` codes when the
//!   design point makes 32-bit accumulation overflow-safe, and a
//!   `_mm256_mul_epi32` 64-bit-accumulate fallback otherwise;
//! * [`matmul_transposed`] — the batch-transposed matmul over the
//!   lane-major `[ins x n_pad]` panel, vectorizing across 8 vectors per
//!   `_mm256_mullo_epi32` for the narrow shapes whose rows cannot fill
//!   lanes;
//! * [`fold_event_counters`] / [`fold_event_counters_t`] — the
//!   event-counter folds in both layouts: 8 rows per step with
//!   per-chunk nonzero bitmaps (row-major), or 8 vectors per step with
//!   lane-resident activity counters (transposed);
//! * [`group_counts`] — the bit-plane popcount stream: one stored column
//!   mask `AND`ed against four vectors' staged pulse planes at once,
//!   popcounted with the `vpshufb` nibble-LUT + `_mm256_sad_epu8` trick.

#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::arch::x86_64::{
    __m256i, _mm256_add_epi32, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256,
    _mm256_castsi256_ps, _mm256_cmpgt_epi32, _mm256_hadd_epi32, _mm256_loadu_si256,
    _mm256_madd_epi16, _mm256_mask_i32gather_epi32, _mm256_movemask_ps, _mm256_mul_epi32,
    _mm256_mullo_epi32, _mm256_or_si256, _mm256_packs_epi32, _mm256_permute4x64_epi64,
    _mm256_sad_epu8, _mm256_set1_epi32, _mm256_set1_epi64x, _mm256_set1_epi8, _mm256_setr_epi8,
    _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_sll_epi64, _mm256_srl_epi32,
    _mm256_srli_epi16, _mm256_srli_epi32, _mm256_srli_epi64, _mm256_storeu_si256, _mm256_sub_epi32,
    _mm_cvtsi32_si128, _mm_loadu_si128, _mm_mask_i32gather_epi32, _mm_setzero_si128,
    _mm_storeu_si128, _mm_unpackhi_epi32, _mm_unpackhi_epi64, _mm_unpacklo_epi32,
    _mm_unpacklo_epi64,
};

use super::{scalar, ExactCodes, FoldParams};

/// Vectors staged per cache block of the blocked matmuls: 8 activation
/// rows of `i16` codes stay well inside L1 alongside a 4-row code quad.
const V_BLOCK: usize = 8;

fn assert_avx2() {
    assert!(
        super::avx2_available(),
        "AVX2 kernel invoked on a host without AVX2"
    );
}

/// AVX2 tier of the exact-path batched matmul. Bit-identical to
/// [`scalar::matmul_into`]: integer arithmetic only, and the `i16` path
/// is used only when `program` proved 32-bit accumulation cannot
/// overflow (8-bit codes, 8-bit acts, `ins <= 32768`).
pub(crate) fn matmul_exact(
    c: &ExactCodes<'_>,
    acts: &[i32],
    n: usize,
    out: &mut [i64],
    acts16: &mut Vec<i16>,
) {
    assert_avx2();
    debug_assert_eq!(acts.len(), n * c.ins);
    debug_assert_eq!(out.len(), n * c.outs);
    if c.outs == 1 && c.ins < 8 {
        // One madd row can't amortize the i16 staging below 8 inputs;
        // the scalar reference is bit-identical, so this is pure
        // heuristics.
        scalar::matmul_into(c.codes, c.outs, c.ins, acts, n, out);
    } else if !c.codes16.is_empty() {
        // SAFETY: AVX2 support asserted above.
        unsafe { matmul_i16(c, acts, n, out, acts16) }
    } else {
        // SAFETY: AVX2 support asserted above.
        unsafe { matmul_i32(c.codes, c.outs, c.ins, acts, n, out) }
    }
}

/// `_mm256_madd_epi16` matmul over the lane-packed `i16` codes.
#[target_feature(enable = "avx2")]
fn matmul_i16(c: &ExactCodes<'_>, acts: &[i32], n: usize, out: &mut [i64], acts16: &mut Vec<i16>) {
    let (ins, ins16, outs) = (c.ins, c.ins16, c.outs);
    debug_assert_eq!(c.codes16.len(), outs * ins16);
    // Stage the block's activations as zero-padded i16 rows. `clear`
    // first so rows shorter than a previous caller's cannot leak stale
    // nonzero padding into the dot products.
    acts16.clear();
    acts16.resize(n * ins16, 0);
    for v in 0..n {
        let av = &acts[v * ins..(v + 1) * ins];
        let dst = &mut acts16[v * ins16..v * ins16 + ins];
        let mut i = 0;
        while i + 16 <= ins {
            // SAFETY: i + 16 <= ins keeps both 32-byte loads and the
            // 32-byte store inside `av` / `dst`; unaligned ops.
            unsafe {
                let a0 = _mm256_loadu_si256(av.as_ptr().add(i) as *const __m256i);
                let a1 = _mm256_loadu_si256(av.as_ptr().add(i + 8) as *const __m256i);
                // packs interleaves 128-bit halves; the permute restores
                // element order. No saturation: codes16 exists only when
                // activations fit 8 unsigned bits.
                let packed = _mm256_permute4x64_epi64(_mm256_packs_epi32(a0, a1), 0b11011000);
                _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, packed);
            }
            i += 16;
        }
        for (d, &a) in dst[i..].iter_mut().zip(&av[i..]) {
            *d = a as i16;
        }
    }
    // Cache-blocked nest: one V_BLOCK x 4 tile of outputs at a time, so
    // the four code rows stream from L1 against every staged activation
    // row of the block.
    let mut vb = 0;
    while vb < n {
        let vb_end = (vb + V_BLOCK).min(n);
        let mut o = 0;
        while o + 4 <= outs {
            for v in vb..vb_end {
                let av = &acts16[v * ins16..(v + 1) * ins16];
                let mut acc = [_mm256_setzero_si256(); 4];
                let mut i = 0;
                while i < ins16 {
                    // SAFETY: ins16 is a multiple of 16, so i + 16 <=
                    // ins16 bounds all five 32-byte loads (codes16 rows
                    // o..o+4 and the activation row share that stride).
                    unsafe {
                        let a = _mm256_loadu_si256(av.as_ptr().add(i) as *const __m256i);
                        for (k, ak) in acc.iter_mut().enumerate() {
                            let w = _mm256_loadu_si256(
                                c.codes16.as_ptr().add((o + k) * ins16 + i) as *const __m256i
                            );
                            *ak = _mm256_add_epi32(*ak, _mm256_madd_epi16(a, w));
                        }
                    }
                    i += 16;
                }
                for (k, ak) in acc.iter().enumerate() {
                    out[v * outs + o + k] = hsum_epi32(*ak);
                }
            }
            o += 4;
        }
        while o < outs {
            for v in vb..vb_end {
                let av = &acts16[v * ins16..(v + 1) * ins16];
                let mut acc = _mm256_setzero_si256();
                let mut i = 0;
                while i < ins16 {
                    // SAFETY: i + 16 <= ins16 as above.
                    unsafe {
                        let a = _mm256_loadu_si256(av.as_ptr().add(i) as *const __m256i);
                        let w = _mm256_loadu_si256(
                            c.codes16.as_ptr().add(o * ins16 + i) as *const __m256i
                        );
                        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a, w));
                    }
                    i += 16;
                }
                out[v * outs + o] = hsum_epi32(acc);
            }
            o += 1;
        }
        vb += V_BLOCK;
    }
}

/// AVX2 tier of the row-major -> lane-major panel repack: one
/// `vpgatherdd` gather pulls 8 vectors' codes for an activation index
/// (stride-`ins` offsets) instead of 8 strided scalar moves. The tail
/// block gathers under a lane mask (AVX2 gathers take the mask as a
/// sign-bit vector), so no address past `acts[n * ins - 1]` is formed;
/// dead lanes are refreshed to zero, a valid code under the
/// stale-padding contract. Same panel contents as
/// [`scalar::repack_transposed`] on every live lane.
pub(crate) fn repack_transposed(
    acts: &[i32],
    ins: usize,
    n: usize,
    n_pad: usize,
    acts_t: &mut [i32],
) {
    assert_avx2();
    debug_assert!(acts.len() >= n * ins);
    debug_assert!(n_pad >= n);
    debug_assert_eq!(n_pad % 8, 0, "transposed panels pad to 8+ lanes");
    debug_assert!(acts_t.len() >= ins * n_pad);
    debug_assert!(
        ins.saturating_mul(8) < i32::MAX as usize,
        "gather offsets fit i32"
    );
    // SAFETY: AVX2 support asserted above.
    unsafe { repack_transposed_impl(acts, ins, n, n_pad, acts_t) }
}

#[target_feature(enable = "avx2")]
fn repack_transposed_impl(acts: &[i32], ins: usize, n: usize, n_pad: usize, acts_t: &mut [i32]) {
    // Sliding-window lane-mask table: a load at offset `8 - live` yields
    // `live` all-ones lanes followed by zeros.
    const LANE_MASKS: [i32; 16] = [-1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0];
    let mut offs = [0i32; 8];
    for (k, o) in offs.iter_mut().enumerate() {
        *o = (k * ins) as i32;
    }
    let mut vb = 0;
    while vb + 4 < n {
        let live = (n - vb).min(8);
        // SAFETY: `offs` is exactly 32 bytes; 8 - live + 8 <= 16 keeps
        // the mask window inside LANE_MASKS.
        let (offs_v, mask) = unsafe {
            (
                _mm256_loadu_si256(offs.as_ptr().cast()),
                _mm256_loadu_si256(LANE_MASKS.as_ptr().add(8 - live).cast()),
            )
        };
        let zero = _mm256_setzero_si256();
        for i in 0..ins {
            // SAFETY: lane k of the gather reads acts[(vb + k) * ins + i];
            // the sign-bit mask keeps k < live, so every accessed element
            // is below n * ins. Masked-off lanes are not accessed.
            let g = unsafe {
                _mm256_mask_i32gather_epi32::<4>(
                    zero,
                    acts.as_ptr().add(vb * ins + i),
                    offs_v,
                    mask,
                )
            };
            // SAFETY: i * n_pad + vb + 8 <= (i + 1) * n_pad since vb and
            // n_pad are multiples of 8 and vb < n <= n_pad.
            unsafe { _mm256_storeu_si256(acts_t.as_mut_ptr().add(i * n_pad + vb).cast(), g) };
        }
        vb += 8;
    }
    if vb < n {
        // At most 4 live lanes left: a 128-bit gather costs less than a
        // 256-bit one and the untouched upper lanes may stay stale.
        let live = n - vb;
        if live == 4 {
            // Exactly four live rows: an in-register 4x4 unpack
            // transpose per column quad beats gathers ~3x (unpacks are
            // single-uop shuffles; a gather pays per lane).
            let mut c = 0;
            while c + 4 <= ins {
                // SAFETY: rows vb..vb+4 < n and columns c..c+4 <= ins
                // keep each 16-byte load inside `acts`.
                let (a0, a1, a2, a3) = unsafe {
                    (
                        _mm_loadu_si128(acts.as_ptr().add(vb * ins + c).cast()),
                        _mm_loadu_si128(acts.as_ptr().add((vb + 1) * ins + c).cast()),
                        _mm_loadu_si128(acts.as_ptr().add((vb + 2) * ins + c).cast()),
                        _mm_loadu_si128(acts.as_ptr().add((vb + 3) * ins + c).cast()),
                    )
                };
                let t0 = _mm_unpacklo_epi32(a0, a1);
                let t1 = _mm_unpackhi_epi32(a0, a1);
                let t2 = _mm_unpacklo_epi32(a2, a3);
                let t3 = _mm_unpackhi_epi32(a2, a3);
                let cols = [
                    _mm_unpacklo_epi64(t0, t2),
                    _mm_unpackhi_epi64(t0, t2),
                    _mm_unpacklo_epi64(t1, t3),
                    _mm_unpackhi_epi64(t1, t3),
                ];
                for (dc, col) in cols.into_iter().enumerate() {
                    // SAFETY: panel row c+dc holds n_pad >= vb + 4 lanes
                    // (vb is a multiple of 8, n_pad >= n = vb + 4 and a
                    // multiple of 8).
                    unsafe {
                        _mm_storeu_si128(
                            acts_t.as_mut_ptr().add((c + dc) * n_pad + vb).cast(),
                            col,
                        );
                    }
                }
                c += 4;
            }
            // Ragged columns (at most three): plain strided moves.
            for i in c..ins {
                for v in 0..4 {
                    acts_t[i * n_pad + vb + v] = acts[(vb + v) * ins + i];
                }
            }
            return;
        }
        // SAFETY: `offs[..4]` is exactly 16 bytes; 8 - live + 4 <= 16
        // keeps the mask window inside LANE_MASKS.
        let (offs_v, mask) = unsafe {
            (
                _mm_loadu_si128(offs.as_ptr().cast()),
                _mm_loadu_si128(LANE_MASKS.as_ptr().add(8 - live).cast()),
            )
        };
        let zero = _mm_setzero_si128();
        for i in 0..ins {
            // SAFETY: lane k < live reads acts[(vb + k) * ins + i],
            // below n * ins; masked-off lanes are not accessed.
            let g = unsafe {
                _mm_mask_i32gather_epi32::<4>(zero, acts.as_ptr().add(vb * ins + i), offs_v, mask)
            };
            // SAFETY: i * n_pad + vb + 4 <= (i + 1) * n_pad since vb is
            // a multiple of 8, n_pad a multiple of 8, and vb < n <= n_pad.
            unsafe { _mm_storeu_si128(acts_t.as_mut_ptr().add(i * n_pad + vb).cast(), g) };
        }
    }
}

/// AVX2 tier of the batch-transposed matmul: activations arrive as a
/// lane-major `[ins x n_pad]` panel, so each 32-byte load carries 8
/// *vectors'* codes for one activation index and the multiply-add runs
/// across the batch — full lanes even for the 9-deep im2col shapes the
/// row-major path cannot fill. Accumulation is `i32`
/// (`_mm256_mullo_epi32`), exact under the same `codes16` eligibility
/// proof the madd path uses (`|code| <= 128`, acts fit 8 unsigned bits,
/// `ins <= 32768` → partial sums < 2^31). Bit-identical to
/// [`scalar::matmul_transposed`].
pub(crate) fn matmul_transposed(
    c: &ExactCodes<'_>,
    acts_t: &[i32],
    n: usize,
    n_pad: usize,
    out: &mut [i64],
) {
    assert_avx2();
    assert!(
        !c.codes16.is_empty(),
        "transposed AVX2 path requires the i16-eligibility overflow proof"
    );
    debug_assert_eq!(n_pad % 8, 0, "transposed panels pad to 8+ lanes");
    debug_assert!(n_pad >= n);
    debug_assert!(acts_t.len() >= c.ins * n_pad);
    debug_assert_eq!(out.len(), n * c.outs);
    // SAFETY: AVX2 support asserted above.
    unsafe { matmul_transposed_impl(c.codes, c.outs, c.ins, acts_t, n, n_pad, out) }
}

#[target_feature(enable = "avx2")]
fn matmul_transposed_impl(
    codes: &[i32],
    outs: usize,
    ins: usize,
    acts_t: &[i32],
    n: usize,
    n_pad: usize,
    out: &mut [i64],
) {
    let mut vb = 0;
    while vb < n {
        let lanes_live = (n - vb).min(8);
        let mut o = 0;
        // Output quads share every panel load across four broadcast
        // code scalars, amortizing the load to one per 4 x 8 MACs.
        while o + 4 <= outs {
            let mut acc = [_mm256_setzero_si256(); 4];
            for i in 0..ins {
                // SAFETY: vb + 8 <= n_pad (vb < n <= n_pad, both
                // multiples of 8) keeps the 32-byte load inside the
                // panel row; unaligned load.
                let a = unsafe {
                    _mm256_loadu_si256(acts_t.as_ptr().add(i * n_pad + vb) as *const __m256i)
                };
                for (k, ak) in acc.iter_mut().enumerate() {
                    let w = _mm256_set1_epi32(codes[(o + k) * ins + i]);
                    *ak = _mm256_add_epi32(*ak, _mm256_mullo_epi32(a, w));
                }
            }
            for (k, ak) in acc.iter().enumerate() {
                scatter_widened(*ak, &mut out[vb * outs..], outs, o + k, lanes_live);
            }
            o += 4;
        }
        while o < outs {
            let mut acc = _mm256_setzero_si256();
            for i in 0..ins {
                // SAFETY: as above.
                let a = unsafe {
                    _mm256_loadu_si256(acts_t.as_ptr().add(i * n_pad + vb) as *const __m256i)
                };
                let w = _mm256_set1_epi32(codes[o * ins + i]);
                acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(a, w));
            }
            scatter_widened(acc, &mut out[vb * outs..], outs, o, lanes_live);
            o += 1;
        }
        vb += 8;
    }
}

/// Writes the 8 `i32` lanes of one transposed accumulator to their
/// row-major output slots, widening to `i64` (exact: per-lane sums are
/// bounded below `i32::MAX` by the eligibility proof).
#[target_feature(enable = "avx2")]
fn scatter_widened(acc: __m256i, out: &mut [i64], outs: usize, o: usize, lanes_live: usize) {
    let mut lanes = [0i32; 8];
    // SAFETY: `lanes` is exactly 32 bytes; unaligned store.
    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc) };
    for (v, &x) in lanes[..lanes_live].iter().enumerate() {
        out[v * outs + o] = x as i64;
    }
}

/// Sums the eight `i32` lanes into an `i64`. Per-lane partial sums are
/// bounded far below `i32::MAX` (see the `codes16` eligibility proof),
/// so widening only at the horizontal step is exact.
#[target_feature(enable = "avx2")]
fn hsum_epi32(v: __m256i) -> i64 {
    let mut lanes = [0i32; 8];
    // SAFETY: `lanes` is exactly 32 bytes; unaligned store.
    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v) };
    lanes.iter().map(|&x| x as i64).sum()
}

/// `_mm256_mul_epi32` matmul with 64-bit accumulation — the general
/// fallback when the `i16` overflow proof does not hold.
#[target_feature(enable = "avx2")]
fn matmul_i32(codes: &[i32], outs: usize, ins: usize, acts: &[i32], n: usize, out: &mut [i64]) {
    let mut vb = 0;
    while vb < n {
        let vb_end = (vb + V_BLOCK).min(n);
        let mut o = 0;
        while o + 4 <= outs {
            for v in vb..vb_end {
                let av = &acts[v * ins..(v + 1) * ins];
                let quad = dot4_i32(codes, o, ins, av);
                out[v * outs + o..v * outs + o + 4].copy_from_slice(&quad);
            }
            o += 4;
        }
        while o < outs {
            for v in vb..vb_end {
                let av = &acts[v * ins..(v + 1) * ins];
                out[v * outs + o] = codes[o * ins..(o + 1) * ins]
                    .iter()
                    .zip(av)
                    .map(|(&w, &a)| w as i64 * a as i64)
                    .sum();
            }
            o += 1;
        }
        vb += V_BLOCK;
    }
}

/// Four consecutive code-row dot products sharing one activation load.
/// Even/odd 32-bit lanes are multiplied separately (`_mm256_mul_epi32`
/// sign-extends the low half of each 64-bit lane) and accumulated in
/// 64 bits, so no overflow is possible for any `i32` inputs.
#[target_feature(enable = "avx2")]
fn dot4_i32(codes: &[i32], o: usize, ins: usize, av: &[i32]) -> [i64; 4] {
    let mut acc = [_mm256_setzero_si256(); 4];
    let mut i = 0;
    while i + 8 <= ins {
        // SAFETY: i + 8 <= ins bounds the activation load and, with the
        // caller's `o + 4 <= outs`, the four code-row loads.
        unsafe {
            let a = _mm256_loadu_si256(av.as_ptr().add(i) as *const __m256i);
            let a_hi = _mm256_srli_epi64(a, 32);
            for (k, ak) in acc.iter_mut().enumerate() {
                let w = _mm256_loadu_si256(codes.as_ptr().add((o + k) * ins + i) as *const __m256i);
                let w_hi = _mm256_srli_epi64(w, 32);
                let lo = _mm256_mul_epi32(a, w);
                let hi = _mm256_mul_epi32(a_hi, w_hi);
                *ak = _mm256_add_epi64(*ak, _mm256_add_epi64(lo, hi));
            }
        }
        i += 8;
    }
    let mut quad = [0i64; 4];
    for (k, (slot, ak)) in quad.iter_mut().zip(&acc).enumerate() {
        let mut lanes = [0i64; 4];
        // SAFETY: `lanes` is exactly 32 bytes; unaligned store.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, *ak) };
        *slot = lanes.iter().sum();
        for (w, a) in codes[(o + k) * ins + i..(o + k + 1) * ins]
            .iter()
            .zip(&av[i..])
        {
            *slot += *w as i64 * *a as i64;
        }
    }
    quad
}

/// `CHUNK_SPREAD_LUT[a]` holds the four 2-bit chunk fields of the 8-bit
/// activation code `a`, each spread into its own 16-bit lane of a `u64`
/// — so the small-shape fold accumulates all four per-chunk sums with a
/// single table load and one 64-bit add per activation.
const fn build_chunk_spread_lut() -> [u64; 256] {
    let mut lut = [0u64; 256];
    let mut a = 0usize;
    while a < 256 {
        let mut b = 0;
        while b < 4 {
            lut[a] |= (((a >> (2 * b)) & 0x3) as u64) << (16 * b);
            b += 1;
        }
        a += 1;
    }
    lut
}
static CHUNK_SPREAD_LUT: [u64; 256] = build_chunk_spread_lut();

/// Small-`ins` event-counter fold of the AVX2 tier, for the paper
/// chunking (`chunk_bits = 2`, 4 chunks, so codes fit 8 bits). Below
/// the vector fold's cutover the per-row work is too small to amortize
/// lane reductions, but the shift-and-mask chunk extraction of the
/// scalar reference (4 shift+mask+add per activation) still dominates;
/// this variant replaces it with one [`CHUNK_SPREAD_LUT`] load and one
/// add. Each 16-bit lane accumulates at most `3 * ins`, so the packing
/// is exact for the `ins < 64` shapes this path is gated to.
/// Bit-identical to [`scalar::fold_event_counters`]: identical integer
/// sums, identical group-activity predicate, identical counter updates.
pub(crate) fn fold_event_counters_small(
    acts: &[i32],
    ins: usize,
    n: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
) {
    debug_assert!(p.chunk_bits == 2 && p.n_chunks == 4);
    debug_assert!(ins <= 21845, "16-bit spread lanes hold at most 3 * 21845");
    debug_assert_eq!(counters.len(), n);
    debug_assert_eq!(acts.len(), n * ins);
    for (v, c) in counters.iter_mut().enumerate() {
        let av = &acts[v * ins..(v + 1) * ins];
        let mut active = 0u64;
        let mut tot = 0u64;
        for &(lo, hi) in p.group_bounds {
            let mut group_or = 0u32;
            for &a in &av[lo as usize..hi as usize] {
                group_or |= a as u32;
                tot += CHUNK_SPREAD_LUT[a as usize];
            }
            for ci in 0..4u32 {
                active += (((group_or >> (2 * ci)) & 0x3) != 0) as u64;
            }
        }
        let total = (tot & 0xffff) + ((tot >> 16) & 0xffff) + ((tot >> 32) & 0xffff) + (tot >> 48);
        c[0] += active * p.col_tiles;
        c[1] += active * p.cols * p.col_tiles;
        c[2] += total * p.col_tiles;
    }
}

/// AVX2 tier of the event-counter fold: all chunk sums accumulate 8
/// rows per step, and group activity is answered from per-chunk nonzero
/// bitmaps instead of a second walk. Accumulates into `counters`
/// exactly like [`scalar::fold_event_counters`].
pub(crate) fn fold_event_counters(
    acts: &[i32],
    ins: usize,
    n: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
    bitmaps: &mut Vec<u64>,
) {
    assert_avx2();
    debug_assert!(p.n_chunks <= 4, "vector fold handles at most 4 chunks");
    // SAFETY: AVX2 support asserted above.
    unsafe { fold_impl(acts, ins, n, p, counters, bitmaps) }
}

#[target_feature(enable = "avx2")]
fn fold_impl(
    acts: &[i32],
    ins: usize,
    n: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
    bitmaps: &mut Vec<u64>,
) {
    debug_assert_eq!(counters.len(), n);
    debug_assert_eq!(acts.len(), n * ins);
    let chunk_mask = (1u32 << p.chunk_bits) - 1;
    let n_words = ins.div_ceil(64).max(1);
    bitmaps.clear();
    bitmaps.resize(p.n_chunks * n_words, 0);
    let mask_v = _mm256_set1_epi32(chunk_mask as i32);
    let zero = _mm256_setzero_si256();
    for (v, c) in counters.iter_mut().enumerate() {
        let av = &acts[v * ins..(v + 1) * ins];
        bitmaps.fill(0);
        let mut sum_acc = [zero; 4];
        let mut i = 0;
        while i + 8 <= ins {
            // SAFETY: i + 8 <= ins == av.len(); unaligned 32-byte load.
            let a = unsafe { _mm256_loadu_si256(av.as_ptr().add(i) as *const __m256i) };
            for (ci, acc) in sum_acc[..p.n_chunks].iter_mut().enumerate() {
                let shift = _mm_cvtsi32_si128((ci as u32 * p.chunk_bits as u32) as i32);
                let pulses = _mm256_and_si256(_mm256_srl_epi32(a, shift), mask_v);
                *acc = _mm256_add_epi32(*acc, pulses);
                // Validated activation codes are non-negative, so a
                // signed greater-than-zero test is a nonzero test.
                let nz = _mm256_cmpgt_epi32(pulses, zero);
                let m = _mm256_movemask_ps(_mm256_castsi256_ps(nz)) as u32 as u64;
                // i is 8-aligned, so the 8 fresh bits stay in one word.
                bitmaps[ci * n_words + i / 64] |= m << (i % 64);
            }
            i += 8;
        }
        // Two hadd pairs fold the four accumulators into one vector
        // laid out [c0 c1 c2 c3 | c0 c1 c2 c3].
        let s01 = _mm256_hadd_epi32(sum_acc[0], sum_acc[1]);
        let s23 = _mm256_hadd_epi32(sum_acc[2], sum_acc[3]);
        let s = _mm256_hadd_epi32(s01, s23);
        let mut lanes = [0i32; 8];
        // SAFETY: `lanes` is exactly 32 bytes; unaligned store.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, s) };
        let mut sums = [0u64; 4];
        for (ci, s) in sums.iter_mut().enumerate() {
            *s = (lanes[ci] + lanes[4 + ci]) as u64;
        }
        for (j, &a) in av.iter().enumerate().skip(i) {
            let a = a as u32;
            for (ci, s) in sums[..p.n_chunks].iter_mut().enumerate() {
                let pulse = (a >> (ci as u32 * p.chunk_bits as u32)) & chunk_mask;
                if pulse != 0 {
                    *s += pulse as u64;
                    bitmaps[ci * n_words + j / 64] |= 1u64 << (j % 64);
                }
            }
        }
        let mut total = 0u64;
        let mut active = 0u64;
        for ci in 0..p.n_chunks {
            total += sums[ci];
            let bm = &bitmaps[ci * n_words..(ci + 1) * n_words];
            for &(lo, hi) in p.group_bounds {
                let (mut j, hi) = (lo as usize, hi as usize);
                let mut any = 0u64;
                while j < hi {
                    let span = (hi - j).min(64 - j % 64);
                    let m = if span == 64 {
                        !0u64
                    } else {
                        ((1u64 << span) - 1) << (j % 64)
                    };
                    any |= bm[j / 64] & m;
                    j += span;
                }
                active += (any != 0) as u64;
            }
        }
        c[0] += active * p.col_tiles;
        c[1] += active * p.cols * p.col_tiles;
        c[2] += total * p.col_tiles;
    }
}

/// AVX2 tier of the batch-transposed event-counter fold: walks the
/// `[ins x n_pad]` panel group-major, keeping per-chunk pulse totals
/// and active-group counts for 8 vectors at once in `i32` lanes (the
/// dispatcher bounds `ins * max_pulse` below `i32::MAX`). The group
/// activity predicate is the vectorized OR-then-compare of the scalar
/// walk, so the fold is bit-identical to
/// [`scalar::fold_event_counters_t`].
pub(crate) fn fold_event_counters_t(
    acts_t: &[i32],
    ins: usize,
    n: usize,
    n_pad: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
) {
    assert_avx2();
    debug_assert!(p.n_chunks <= 4, "vector fold handles at most 4 chunks");
    debug_assert_eq!(n_pad % 8, 0, "transposed panels pad to 8+ lanes");
    debug_assert!(n_pad >= n);
    debug_assert!(acts_t.len() >= ins * n_pad);
    debug_assert_eq!(counters.len(), n);
    // SAFETY: AVX2 support asserted above.
    unsafe { fold_t_impl(acts_t, ins, n, n_pad, p, counters) }
}

#[target_feature(enable = "avx2")]
fn fold_t_impl(
    acts_t: &[i32],
    _ins: usize,
    n: usize,
    n_pad: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
) {
    if p.chunk_bits == 2 && p.n_chunks == 4 {
        return fold_t_design_point(acts_t, n, n_pad, p, counters);
    }
    let chunk_mask = (1u32 << p.chunk_bits) - 1;
    let mask_v = _mm256_set1_epi32(chunk_mask as i32);
    let zero = _mm256_setzero_si256();
    let mut shifts = [_mm_cvtsi32_si128(0); 4];
    for (ci, s) in shifts[..p.n_chunks].iter_mut().enumerate() {
        *s = _mm_cvtsi32_si128((ci as u32 * p.chunk_bits as u32) as i32);
    }
    let mut vb = 0;
    while vb < n {
        let lanes_live = (n - vb).min(8);
        let mut tot_acc = [zero; 4];
        let mut act_acc = [zero; 4];
        for &(lo, hi) in p.group_bounds {
            let mut group_or = zero;
            for i in lo as usize..hi as usize {
                // SAFETY: vb + 8 <= n_pad (vb < n <= n_pad, both
                // multiples of 8) keeps the 32-byte load inside the
                // panel row; unaligned load.
                let a = unsafe {
                    _mm256_loadu_si256(acts_t.as_ptr().add(i * n_pad + vb) as *const __m256i)
                };
                group_or = _mm256_or_si256(group_or, a);
                for (acc, &shift) in tot_acc[..p.n_chunks].iter_mut().zip(&shifts) {
                    let pulses = _mm256_and_si256(_mm256_srl_epi32(a, shift), mask_v);
                    *acc = _mm256_add_epi32(*acc, pulses);
                }
            }
            for (acc, &shift) in act_acc[..p.n_chunks].iter_mut().zip(&shifts) {
                let field = _mm256_and_si256(_mm256_srl_epi32(group_or, shift), mask_v);
                // cmpgt yields -1 per active lane; subtracting counts.
                *acc = _mm256_sub_epi32(*acc, _mm256_cmpgt_epi32(field, zero));
            }
        }
        // Fold the per-chunk accumulators in-register before the lane
        // extraction (the caller's eligibility gate bounds the summed
        // totals below `i32::MAX`): one store per quantity, and the
        // scalar tail is three multiply-adds per vector.
        let mut tot = zero;
        let mut act = zero;
        for ci in 0..p.n_chunks {
            tot = _mm256_add_epi32(tot, tot_acc[ci]);
            act = _mm256_add_epi32(act, act_acc[ci]);
        }
        let mut tot_lanes = [0i32; 8];
        let mut act_lanes = [0i32; 8];
        // SAFETY: each destination is exactly 32 bytes; unaligned
        // stores.
        unsafe {
            _mm256_storeu_si256(tot_lanes.as_mut_ptr() as *mut __m256i, tot);
            _mm256_storeu_si256(act_lanes.as_mut_ptr() as *mut __m256i, act);
        }
        for (v, c) in counters[vb..vb + lanes_live].iter_mut().enumerate() {
            let active = act_lanes[v] as u64;
            let total = tot_lanes[v] as u64;
            c[0] += active * p.col_tiles;
            c[1] += active * p.cols * p.col_tiles;
            c[2] += total * p.col_tiles;
        }
        vb += 8;
    }
}

/// Design-point specialization of the transposed fold (`chunk_bits = 2`,
/// `n_chunks = 4`, i.e. 8-bit codes split into four 2-bit pulse fields):
/// the per-chunk extract/add cascade collapses into a sideways field sum
/// with immediate shifts — `(a & 0x33) + ((a >> 2) & 0x33)` pairs the
/// fields into two nibbles, one more fold adds the nibbles — feeding a
/// single pulse-total accumulator. Reads exactly bits 0..8 of each code,
/// the same bits the generic chunk walk extracts, so it stays
/// bit-identical for any input.
#[target_feature(enable = "avx2")]
fn fold_t_design_point(
    acts_t: &[i32],
    n: usize,
    n_pad: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
) {
    let pair_mask = _mm256_set1_epi32(0x33);
    let nib_mask = _mm256_set1_epi32(0x0F);
    let chunk_mask = _mm256_set1_epi32(0x3);
    let zero = _mm256_setzero_si256();
    let mut vb = 0;
    while vb < n {
        let lanes_live = (n - vb).min(8);
        let mut tot = zero;
        let mut act = zero;
        for &(lo, hi) in p.group_bounds {
            let mut group_or = zero;
            for i in lo as usize..hi as usize {
                // SAFETY: vb + 8 <= n_pad (vb < n <= n_pad, both
                // multiples of 8) keeps the 32-byte load inside the
                // panel row; unaligned load.
                let a = unsafe {
                    _mm256_loadu_si256(acts_t.as_ptr().add(i * n_pad + vb) as *const __m256i)
                };
                group_or = _mm256_or_si256(group_or, a);
                let pairs = _mm256_add_epi32(
                    _mm256_and_si256(a, pair_mask),
                    _mm256_and_si256(_mm256_srli_epi32::<2>(a), pair_mask),
                );
                // `pairs` is at most 0x66 per lane, so the high shift
                // needs no mask.
                let pulses = _mm256_add_epi32(
                    _mm256_and_si256(pairs, nib_mask),
                    _mm256_srli_epi32::<4>(pairs),
                );
                tot = _mm256_add_epi32(tot, pulses);
            }
            let mut fields = group_or;
            for _ in 0..4 {
                let field = _mm256_and_si256(fields, chunk_mask);
                // cmpgt yields -1 per active lane; subtracting counts.
                act = _mm256_sub_epi32(act, _mm256_cmpgt_epi32(field, zero));
                fields = _mm256_srli_epi32::<2>(fields);
            }
        }
        let mut tot_lanes = [0i32; 8];
        let mut act_lanes = [0i32; 8];
        // SAFETY: each destination is exactly 32 bytes; unaligned
        // stores.
        unsafe {
            _mm256_storeu_si256(tot_lanes.as_mut_ptr() as *mut __m256i, tot);
            _mm256_storeu_si256(act_lanes.as_mut_ptr() as *mut __m256i, act);
        }
        for (v, c) in counters[vb..vb + lanes_live].iter_mut().enumerate() {
            let active = act_lanes[v] as u64;
            let total = tot_lanes[v] as u64;
            c[0] += active * p.col_tiles;
            c[1] += active * p.cols * p.col_tiles;
            c[2] += total * p.col_tiles;
        }
        vb += 8;
    }
}

/// AVX2 tier of the bit-plane popcount stream: the column mask is
/// broadcast and `AND`ed against four vectors' staged planes per step,
/// popcounted via the `vpshufb` nibble LUT and `_mm256_sad_epu8`, and
/// weighted by plane significance with a single variable shift.
pub(crate) fn group_counts(
    mask: u64,
    planes: &[u64],
    n_planes: usize,
    n_pad: usize,
    counts: &mut [u64],
) {
    assert_avx2();
    debug_assert_eq!(n_pad % 4, 0, "staging layout must pad to 4 lanes");
    debug_assert!(planes.len() >= n_planes * n_pad);
    debug_assert_eq!(counts.len(), n_pad);
    // SAFETY: AVX2 support asserted above.
    unsafe { group_counts_impl(mask, planes, n_planes, n_pad, counts) }
}

#[target_feature(enable = "avx2")]
fn group_counts_impl(mask: u64, planes: &[u64], n_planes: usize, n_pad: usize, counts: &mut [u64]) {
    if n_planes == 0 {
        counts.fill(0);
        return;
    }
    // Per-byte popcounts of the low/high nibbles, summed, then reduced
    // to per-64-bit-lane totals by summing bytes against zero.
    #[rustfmt::skip]
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_nibble = _mm256_set1_epi8(0x0f);
    let zero = _mm256_setzero_si256();
    let mask_v = _mm256_set1_epi64x(mask as i64);
    let mut v = 0;
    while v < n_pad {
        let mut acc = zero;
        for b in 0..n_planes {
            // SAFETY: v + 4 <= n_pad and b < n_planes keep the 32-byte
            // load inside `planes[..n_planes * n_pad]` (checked by the
            // wrapper); unaligned load.
            let pl =
                unsafe { _mm256_loadu_si256(planes.as_ptr().add(b * n_pad + v) as *const __m256i) };
            let x = _mm256_and_si256(pl, mask_v);
            let lo = _mm256_and_si256(x, low_nibble);
            let hi = _mm256_and_si256(_mm256_srli_epi16(x, 4), low_nibble);
            let pops = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
            let lane_counts = _mm256_sad_epu8(pops, zero);
            // Weight this plane by 2^b while still vectorized.
            acc = _mm256_add_epi64(
                acc,
                _mm256_sll_epi64(lane_counts, _mm_cvtsi32_si128(b as i32)),
            );
        }
        // SAFETY: v + 4 <= n_pad == counts.len(); unaligned store.
        unsafe { _mm256_storeu_si256(counts.as_mut_ptr().add(v) as *mut __m256i, acc) };
        v += 4;
    }
}
