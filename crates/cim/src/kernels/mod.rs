//! Runtime-dispatched MVM kernel tiers.
//!
//! The batched bit-plane kernels ([`RomMvm::mvm_batch_exact`] and
//! [`RomMvm::mvm_batch_fast`]) execute through one of two **tiers**:
//!
//! * [`KernelKind::Scalar`] — portable Rust, no `unsafe`, no ISA
//!   assumptions. This tier *is* the reference semantics: every other
//!   tier is pinned bit-identical to it (values **and** [`MvmStats`]) by
//!   the kernel-parity property suites.
//! * [`KernelKind::Avx2`] — x86_64 `std::arch` intrinsics (the `avx2`
//!   module):
//!   a register-blocked integer matmul (`_mm256_madd_epi16` when the
//!   8-bit design point makes it overflow-safe, `_mm256_mul_epi32`
//!   otherwise), a vectorized event-counter fold, and the lane-packed
//!   `AND`+popcount mask stream via the `vpshufb` nibble-LUT trick.
//!
//! Which tier runs is decided **once, at [`RomMvm::program`] time**, by
//! [`KernelDispatch`]: the `YOLOC_KERNEL` environment variable
//! (`scalar`, `avx2` or `auto`) overrides the default `auto` policy,
//! which selects AVX2 whenever `is_x86_feature_detected!("avx2")` holds.
//! The hot loops then match on a stored [`KernelKind`] — no per-call
//! feature detection.
//!
//! All arithmetic on every tier is exact integer arithmetic, so tier
//! choice can never change a result; the dispatch surface exists purely
//! for speed, and CI runs the parity suites under both overrides to keep
//! it that way.
//!
//! [`RomMvm::mvm_batch_exact`]: crate::macro_model::RomMvm
//! [`RomMvm::mvm_batch_fast`]: crate::macro_model::RomMvm
//! [`RomMvm::program`]: crate::macro_model::RomMvm::program
//! [`MvmStats`]: crate::macro_model::MvmStats

pub(crate) mod scalar;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;

/// The kernel tier a programmed engine executes its batched MVMs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Portable scalar tier — the bit-identical reference.
    Scalar,
    /// AVX2 `std::arch` tier (x86_64 with runtime-detected support).
    Avx2,
}

impl KernelKind {
    /// Short stable label used in reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Avx2 => "avx2",
        }
    }
}

/// How to pick the [`KernelKind`] for a newly programmed engine.
///
/// Parsed from the `YOLOC_KERNEL` environment variable at
/// [`RomMvm::program`] time (`scalar` | `avx2` | `auto`; unset means
/// [`KernelDispatch::Auto`]). Forcing `avx2` on a host without AVX2
/// resolves to the scalar tier with a one-time warning rather than
/// aborting, so a pinned CI environment stays runnable everywhere — the
/// parity suites detect the downgrade and skip-with-note.
///
/// [`RomMvm::program`]: crate::macro_model::RomMvm::program
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelDispatch {
    /// Pick the fastest tier the host supports (the default).
    #[default]
    Auto,
    /// Force the portable scalar tier.
    Scalar,
    /// Force the AVX2 tier (falls back to scalar, with a warning, when
    /// the host lacks AVX2).
    Avx2,
}

impl KernelDispatch {
    /// Reads the dispatch policy from `YOLOC_KERNEL`.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value — a typoed override must fail
    /// loudly, not silently benchmark the wrong tier.
    pub fn from_env() -> Self {
        match std::env::var("YOLOC_KERNEL") {
            Err(_) => KernelDispatch::Auto,
            Ok(v) => match v.as_str() {
                "auto" | "" => KernelDispatch::Auto,
                "scalar" => KernelDispatch::Scalar,
                "avx2" => KernelDispatch::Avx2,
                other => panic!("unknown YOLOC_KERNEL value {other:?} (expected scalar|avx2|auto)"),
            },
        }
    }

    /// Resolves the policy against the host's detected features.
    pub fn resolve(self) -> KernelKind {
        match self {
            KernelDispatch::Scalar => KernelKind::Scalar,
            KernelDispatch::Auto => {
                if avx2_available() {
                    KernelKind::Avx2
                } else {
                    KernelKind::Scalar
                }
            }
            KernelDispatch::Avx2 => {
                if avx2_available() {
                    KernelKind::Avx2
                } else {
                    warn_avx2_unavailable();
                    KernelKind::Scalar
                }
            }
        }
    }
}

/// Whether the AVX2 tier can run on this host (always `false` off
/// x86_64). Detection is cached by the standard library; calling this in
/// a hot loop is still wrong — resolve once and store the [`KernelKind`].
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Every kernel tier the host can execute, scalar first. Parity suites
/// iterate this so a test run covers exactly the tiers that can run.
pub fn available_kinds() -> Vec<KernelKind> {
    let mut kinds = vec![KernelKind::Scalar];
    if avx2_available() {
        kinds.push(KernelKind::Avx2);
    }
    kinds
}

fn warn_avx2_unavailable() {
    use std::sync::atomic::{AtomicBool, Ordering};
    static WARNED: AtomicBool = AtomicBool::new(false);
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!("note: YOLOC_KERNEL=avx2 requested but AVX2 is not available; using the scalar kernel tier");
    }
}

/// The stored weight codes of an exact-kernel engine, in every packing
/// the matmul tiers understand: row-major `i32` (the reference layout)
/// plus the optional lane-packed `i16` copy (`ins16`-strided, zero
/// padded) built at `program` time when the `_mm256_madd_epi16` path is
/// overflow-safe.
pub(crate) struct ExactCodes<'a> {
    /// Row-major `outs x ins` signed codes.
    pub codes: &'a [i32],
    /// Lane-packed `i16` codes (`outs x ins16`), empty when ineligible.
    pub codes16: &'a [i16],
    /// Row stride of `codes16`: `ins` rounded up to 16 lanes.
    pub ins16: usize,
    /// Output rows.
    pub outs: usize,
    /// Dot-product depth.
    pub ins: usize,
}

/// Batched integer matmul `out[v][o] = sum_i codes[o][i] * acts[v][i]`,
/// dispatched by tier. Every tier computes the exact integer product —
/// bit-identical to [`scalar::matmul_into`] by construction (and by the
/// parity suites).
pub(crate) fn matmul_exact(
    kind: KernelKind,
    c: &ExactCodes<'_>,
    acts: &[i32],
    n: usize,
    out: &mut [i64],
    acts16: &mut Vec<i16>,
) {
    match kind {
        KernelKind::Scalar => scalar::matmul_into(c.codes, c.outs, c.ins, acts, n, out),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => avx2::matmul_exact(c, acts, n, out, acts16),
        #[cfg(not(target_arch = "x86_64"))]
        KernelKind::Avx2 => unreachable!("AVX2 tier cannot be selected off x86_64"),
    }
}

/// Shape constants of one event-counter fold, shared by every tier.
pub(crate) struct FoldParams<'a> {
    /// Global `(lo, hi)` activation-row ranges of every analog group, in
    /// row order (precomputed at `program` time; groups never span a row
    /// tile).
    pub group_bounds: &'a [(u32, u32)],
    /// Activation chunk count (`ceil(act_bits / chunk_bits)`).
    pub n_chunks: usize,
    /// Bits per activation chunk.
    pub chunk_bits: u8,
    /// Column tiles every group evaluation fans across.
    pub col_tiles: u64,
    /// Bit lines digitized per group evaluation.
    pub cols: u64,
}

/// The one shared event-counter fold (the satellite fix for the
/// duplicated walks): derives each vector's
/// `(analog_evaluations, adc_conversions, wl_pulses)` from pulse
/// activity alone — a group evaluates for a chunk iff any of its rows
/// carries a nonzero pulse in that chunk — and **accumulates** into
/// `counters[v]`. Both batch kernels call this, so the SIMD tier can
/// never drift from the statistics the scalar tier reports.
pub(crate) fn fold_event_counters(
    kind: KernelKind,
    acts: &[i32],
    ins: usize,
    n: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
    bitmaps: &mut Vec<u64>,
) {
    match kind {
        KernelKind::Scalar => scalar::fold_event_counters(acts, ins, n, p, counters),
        #[cfg(target_arch = "x86_64")]
        // The vectorized fold pays per-vector reduction overhead; below
        // ~64 rows it cannot win. Both are exact, so the cutover is a
        // pure-speed heuristic.
        KernelKind::Avx2 if ins >= 64 && p.n_chunks <= 4 => {
            avx2::fold_event_counters(acts, ins, n, p, counters, bitmaps);
        }
        #[cfg(target_arch = "x86_64")]
        // Below the vector cutover, the tier-2 win is table-driven chunk
        // spreading (one load+add per activation) at the paper chunking.
        KernelKind::Avx2 if p.chunk_bits == 2 && p.n_chunks == 4 => {
            let _ = bitmaps;
            avx2::fold_event_counters_small(acts, ins, n, p, counters);
        }
        KernelKind::Avx2 => {
            let _ = bitmaps;
            scalar::fold_event_counters(acts, ins, n, p, counters);
        }
    }
}

/// Discharge counts of one stored column mask against the staged pulse
/// bit-planes of a whole block:
/// `counts[v] = sum_b 2^b * popcount(mask & planes[b][v])`, with the
/// plane-major staging layout `planes[b * n_pad + v]`. Dispatched by
/// tier; `counts.len()` is the lane-padded block size `n_pad`.
pub(crate) fn group_counts(
    kind: KernelKind,
    mask: u64,
    planes: &[u64],
    n_planes: usize,
    n_pad: usize,
    counts: &mut [u64],
) {
    match kind {
        KernelKind::Scalar => scalar::group_counts(mask, planes, n_planes, n_pad, counts),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => avx2::group_counts(mask, planes, n_planes, n_pad, counts),
        #[cfg(not(target_arch = "x86_64"))]
        KernelKind::Avx2 => unreachable!("AVX2 tier cannot be selected off x86_64"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_resolution_is_host_consistent() {
        assert_eq!(KernelDispatch::Scalar.resolve(), KernelKind::Scalar);
        let auto = KernelDispatch::Auto.resolve();
        let forced = KernelDispatch::Avx2.resolve();
        if avx2_available() {
            assert_eq!(auto, KernelKind::Avx2);
            assert_eq!(forced, KernelKind::Avx2);
        } else {
            // Forcing AVX2 on a host without it downgrades (with a
            // warning) instead of aborting.
            assert_eq!(auto, KernelKind::Scalar);
            assert_eq!(forced, KernelKind::Scalar);
        }
        let kinds = available_kinds();
        assert_eq!(kinds[0], KernelKind::Scalar);
        assert_eq!(kinds.len(), 1 + avx2_available() as usize);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(KernelKind::Scalar.label(), "scalar");
        assert_eq!(KernelKind::Avx2.label(), "avx2");
    }

    #[test]
    fn primitive_kernels_match_scalar_reference_on_every_tier() {
        // Direct primitive-level parity on irregular shapes (remainders
        // in every dimension); the macro-level parity suites cover the
        // same tiers end to end.
        let (outs, ins, n) = (7usize, 83usize, 5usize);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| (i as i32 * 37) % 255 - 127)
            .collect();
        let acts: Vec<i32> = (0..n * ins).map(|i| (i as i32 * 13) % 256).collect();
        let ins16 = ins.next_multiple_of(16);
        let mut codes16 = vec![0i16; outs * ins16];
        for o in 0..outs {
            for i in 0..ins {
                codes16[o * ins16 + i] = codes[o * ins + i] as i16;
            }
        }
        let mut reference = vec![0i64; n * outs];
        scalar::matmul_into(&codes, outs, ins, &acts, n, &mut reference);
        let bounds: Vec<(u32, u32)> = (0..ins as u32)
            .step_by(10)
            .map(|lo| (lo, (lo + 10).min(ins as u32)))
            .collect();
        let fold = FoldParams {
            group_bounds: &bounds,
            n_chunks: 4,
            chunk_bits: 2,
            col_tiles: 3,
            cols: 256,
        };
        let mut ref_counters = vec![[0u64; 3]; n];
        scalar::fold_event_counters(&acts, ins, n, &fold, &mut ref_counters);
        for kind in available_kinds() {
            for with_i16 in [false, true] {
                let c = ExactCodes {
                    codes: &codes,
                    codes16: if with_i16 { &codes16 } else { &[] },
                    ins16: if with_i16 { ins16 } else { 0 },
                    outs,
                    ins,
                };
                let mut out = vec![0i64; n * outs];
                let mut acts16 = Vec::new();
                matmul_exact(kind, &c, &acts, n, &mut out, &mut acts16);
                assert_eq!(out, reference, "{} matmul (i16={with_i16})", kind.label());
            }
            let mut counters = vec![[0u64; 3]; n];
            let mut bitmaps = Vec::new();
            fold_event_counters(kind, &acts, ins, n, &fold, &mut counters, &mut bitmaps);
            assert_eq!(counters, ref_counters, "{} fold", kind.label());
        }
        // Popcount stream parity over staged planes.
        let (n_planes, n_pad) = (2, 8);
        let planes: Vec<u64> = (0..n_planes * n_pad)
            .map(|i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        let mask = 0x0000_03ffu64; // 10-row group mask
        let mut ref_counts = vec![0u64; n_pad];
        scalar::group_counts(mask, &planes, n_planes, n_pad, &mut ref_counts);
        for kind in available_kinds() {
            let mut counts = vec![0u64; n_pad];
            group_counts(kind, mask, &planes, n_planes, n_pad, &mut counts);
            assert_eq!(counts, ref_counts, "{} group_counts", kind.label());
        }
    }
}
