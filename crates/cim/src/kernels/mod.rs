//! Runtime-dispatched MVM kernel tiers.
//!
//! The batched bit-plane kernels ([`RomMvm::mvm_batch_exact`] and
//! [`RomMvm::mvm_batch_fast`]) execute through one of three **tiers**:
//!
//! * [`KernelKind::Scalar`] — portable Rust, no `unsafe`, no ISA
//!   assumptions. This tier *is* the reference semantics: every other
//!   tier is pinned bit-identical to it (values **and** [`MvmStats`]) by
//!   the kernel-parity property suites.
//! * [`KernelKind::Avx2`] — x86_64 `std::arch` intrinsics (the `avx2`
//!   module):
//!   a register-blocked integer matmul (`_mm256_madd_epi16` when the
//!   8-bit design point makes it overflow-safe, `_mm256_mul_epi32`
//!   otherwise), a vectorized event-counter fold, and the lane-packed
//!   `AND`+popcount mask stream via the `vpshufb` nibble-LUT trick.
//! * [`KernelKind::Avx512`] — the 512-bit tier (the `avx512` module):
//!   32-lane `_mm512_madd_epi16` matmuls, a native `vpopcntq`
//!   (`_mm512_popcnt_epi64`) mask stream replacing the nibble LUT, and a
//!   16-lane event-counter fold with mask-register activity bitmaps.
//!
//! Orthogonal to the tier, each batch executes in one of two activation
//! **layouts** ([`MatmulLayout`], chosen per shape by [`choose_layout`]):
//! the row-major layout vectorizes each vector's dot products across
//! `ins`, while the *batch-transposed* layout stages the block as a
//! lane-major `[ins x n_pad]` panel and vectorizes **across vectors** —
//! 8 (AVX2) or 16 (AVX-512) activations per SIMD op — which is what
//! rescues the zoo's narrow im2col shapes (`1x9`, `2x9`, `4x18`) whose
//! 9-wide rows cannot fill lanes in the row-major layout. The scalar
//! tier implements both layouts too, so the parity oracle covers every
//! (tier, layout) cell.
//!
//! Which tier runs is decided **once, at [`RomMvm::program`] time**, by
//! [`KernelDispatch`]: the `YOLOC_KERNEL` environment variable
//! (`scalar`, `avx2`, `avx512` or `auto`) overrides the default `auto`
//! policy, which selects the widest tier the host supports. The hot
//! loops then match on a stored [`KernelKind`] — no per-call feature
//! detection.
//!
//! All arithmetic on every tier is exact integer arithmetic, so tier and
//! layout choice can never change a result; the dispatch surface exists
//! purely for speed, and CI runs the parity suites under every override
//! to keep it that way.
//!
//! [`RomMvm::mvm_batch_exact`]: crate::macro_model::RomMvm
//! [`RomMvm::mvm_batch_fast`]: crate::macro_model::RomMvm
//! [`RomMvm::program`]: crate::macro_model::RomMvm::program
//! [`MvmStats`]: crate::macro_model::MvmStats

pub(crate) mod scalar;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx512;

/// The kernel tier a programmed engine executes its batched MVMs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Portable scalar tier — the bit-identical reference.
    Scalar,
    /// AVX2 `std::arch` tier (x86_64 with runtime-detected support).
    Avx2,
    /// AVX-512 `std::arch` tier (x86_64 with runtime-detected
    /// F+BW+VL+VPOPCNTDQ support).
    Avx512,
}

impl KernelKind {
    /// Short stable label used in reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Avx2 => "avx2",
            KernelKind::Avx512 => "avx512",
        }
    }

    /// Lane padding of the plane-major pulse staging buffer this tier's
    /// popcount stream consumes: the quantizing fast path rounds the
    /// block size up to this multiple so `group_counts` never needs a
    /// remainder loop.
    pub(crate) fn plane_pad(self) -> usize {
        match self {
            // The AVX2 nibble-LUT stream eats 4 x u64 per step; the
            // AVX-512 `vpopcntq` stream eats 8.
            KernelKind::Scalar | KernelKind::Avx2 => 4,
            KernelKind::Avx512 => 8,
        }
    }
}

/// How to pick the [`KernelKind`] for a newly programmed engine.
///
/// Parsed from the `YOLOC_KERNEL` environment variable at
/// [`RomMvm::program`] time (`scalar` | `avx2` | `avx512` | `auto`;
/// unset means [`KernelDispatch::Auto`]). Forcing a tier on a host
/// without it resolves to the widest available tier with a one-time
/// warning rather than aborting, so a pinned CI environment stays
/// runnable everywhere — the parity suites detect the downgrade and
/// skip-with-note.
///
/// [`RomMvm::program`]: crate::macro_model::RomMvm::program
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelDispatch {
    /// Pick the fastest tier the host supports (the default).
    #[default]
    Auto,
    /// Force the portable scalar tier.
    Scalar,
    /// Force the AVX2 tier (falls back to scalar, with a warning, when
    /// the host lacks AVX2).
    Avx2,
    /// Force the AVX-512 tier (falls back to AVX2 — or scalar — with a
    /// warning, when the host lacks the required AVX-512 subsets).
    Avx512,
}

impl KernelDispatch {
    /// Reads the dispatch policy from `YOLOC_KERNEL`.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value — a typoed override must fail
    /// loudly, not silently benchmark the wrong tier.
    pub fn from_env() -> Self {
        match std::env::var("YOLOC_KERNEL") {
            Err(_) => KernelDispatch::Auto,
            Ok(v) => {
                match v.as_str() {
                    "auto" | "" => KernelDispatch::Auto,
                    "scalar" => KernelDispatch::Scalar,
                    "avx2" => KernelDispatch::Avx2,
                    "avx512" => KernelDispatch::Avx512,
                    other => {
                        panic!("unknown YOLOC_KERNEL value {other:?} (expected scalar|avx2|avx512|auto)")
                    }
                }
            }
        }
    }

    /// Resolves the policy against the host's detected features.
    pub fn resolve(self) -> KernelKind {
        match self {
            KernelDispatch::Scalar => KernelKind::Scalar,
            KernelDispatch::Auto => {
                if avx512_available() {
                    KernelKind::Avx512
                } else if avx2_available() {
                    KernelKind::Avx2
                } else {
                    KernelKind::Scalar
                }
            }
            KernelDispatch::Avx2 => {
                if avx2_available() {
                    KernelKind::Avx2
                } else {
                    warn_forced_unavailable("avx2", "scalar");
                    KernelKind::Scalar
                }
            }
            KernelDispatch::Avx512 => {
                if avx512_available() {
                    KernelKind::Avx512
                } else if avx2_available() {
                    warn_forced_unavailable("avx512", "avx2");
                    KernelKind::Avx2
                } else {
                    warn_forced_unavailable("avx512", "scalar");
                    KernelKind::Scalar
                }
            }
        }
    }
}

/// Whether the AVX2 tier can run on this host (always `false` off
/// x86_64). Detection is cached by the standard library; calling this in
/// a hot loop is still wrong — resolve once and store the [`KernelKind`].
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the AVX-512 tier can run on this host (always `false` off
/// x86_64). Requires the F, BW and VL subsets (madd matmuls, masked
/// `i16` loads, 256-bit mixes) plus VPOPCNTDQ for the `vpopcntq` mask
/// stream. Resolve once and store the [`KernelKind`]; do not call this
/// in a hot loop.
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512vl")
            && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Every kernel tier the host can execute, scalar first. Parity suites
/// iterate this so a test run covers exactly the tiers that can run.
pub fn available_kinds() -> Vec<KernelKind> {
    let mut kinds = vec![KernelKind::Scalar];
    if avx2_available() {
        kinds.push(KernelKind::Avx2);
    }
    if avx512_available() {
        kinds.push(KernelKind::Avx512);
    }
    kinds
}

fn warn_forced_unavailable(requested: &str, fallback: &str) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static WARNED: AtomicBool = AtomicBool::new(false);
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "note: YOLOC_KERNEL={requested} requested but the ISA tier is not available; \
             using the {fallback} kernel tier"
        );
    }
}

/// Which activation layout a batched MVM executes in.
///
/// Row-major is the staging layout callers have always produced
/// (`acts[v * ins + i]`); the batch-transposed layout stages the block
/// as a lane-major `[ins x n_pad]` panel (`acts_t[i * n_pad + v]`,
/// `n_pad = `[`transposed_pad`]`(n)`, padding lanes zero) so the SIMD
/// tiers vectorize across *vectors* instead of across `ins`. Both
/// layouts are exact integer paths over the same values, so the choice
/// can never change a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulLayout {
    /// `acts[v * ins + i]` — one contiguous activation row per vector.
    RowMajor,
    /// `acts_t[i * n_pad + v]` — one contiguous *lane row* per
    /// activation index, padded to [`transposed_pad`] vectors.
    Transposed,
}

/// Lane padding of a transposed activation panel: block size `n`
/// rounded up to 16 `i32` lanes (one AVX-512 register; two AVX2
/// registers; the scalar tier ignores padding). Padding lanes are never
/// read back but must stay within the activation code range — zero, or
/// stale codes left over from an earlier staging pass.
pub fn transposed_pad(n: usize) -> usize {
    n.next_multiple_of(16).max(16)
}

/// The shape-driven row-major vs batch-transposed crossover for the
/// SIMD tiers (the scalar reference tier always dispatches row-major —
/// its fastest staging — and its transposed entries are exercised as
/// parity oracles with explicit panels).
///
/// The transposed path wins whenever the event-counter fold — whose
/// cost scales with `ins` per vector and vectorizes across lanes only
/// in the panel layout — is a visible share of the row-major time:
/// everything up to `outs <= 16`, and `outs == 32` while `ins` stays
/// moderate. At larger `outs` the row-major `madd` matmul dominates
/// the call and already fills lanes across `ins`, and the repack toll
/// (one strided pass over `ins` codes per vector) outweighs the fold
/// win. The transposed path requires the `i16`-eligibility overflow
/// proof (`has_i16`), which also bounds its `i32` lane accumulators,
/// and a batch of at least 4 so the 16-lane panel is not mostly
/// padding.
pub fn choose_layout(outs: usize, ins: usize, n: usize, has_i16: bool) -> MatmulLayout {
    let fold_bound = outs <= 16 || (outs <= 32 && ins <= 144);
    if has_i16 && n >= 4 && fold_bound {
        MatmulLayout::Transposed
    } else {
        MatmulLayout::RowMajor
    }
}

/// Weight codes lane-packed to `i16` for the madd matmul tiers: row
/// stride rounded up to 16 lanes, tail lanes zero. Built once at
/// `program` time by [`pack_codes16`] (and by the parity suites — this
/// type is the single owner of the packing rule). An empty packing
/// (`is_empty`) means the shape failed the overflow proof and the `i16`
/// path must not run.
#[must_use = "packing codes16 is pointless unless the packed view is stored"]
#[derive(Debug, Clone, Default)]
pub(crate) struct PackedCodes16 {
    data: Vec<i16>,
    ins16: usize,
}

impl PackedCodes16 {
    /// The no-packing sentinel for shapes outside the overflow proof.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Lane-packed codes, `outs x ins16` row-major; empty if ineligible.
    pub fn data(&self) -> &[i16] {
        &self.data
    }

    /// Row stride of the packing (0 when empty).
    pub fn stride(&self) -> usize {
        self.ins16
    }

    /// Whether this is the no-packing sentinel.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Packs row-major `i32` codes into the lane-major `i16` layout every
/// madd tier consumes. Caller is responsible for the overflow proof
/// (`weight_bits <= 8 && act_bits <= 8 && ins <= 32768`); values are
/// asserted to fit `i16` in debug builds.
pub(crate) fn pack_codes16(codes: &[i32], outs: usize, ins: usize) -> PackedCodes16 {
    assert_eq!(codes.len(), outs * ins, "row-major codes shape mismatch");
    let ins16 = ins.next_multiple_of(16);
    let mut data = vec![0i16; outs * ins16];
    for o in 0..outs {
        for i in 0..ins {
            let c = codes[o * ins + i];
            debug_assert!(i32::from(c as i16) == c, "code {c} exceeds i16");
            data[o * ins16 + i] = c as i16;
        }
    }
    PackedCodes16 { data, ins16 }
}

/// The stored weight codes of an exact-kernel engine, in every packing
/// the matmul tiers understand: row-major `i32` (the reference layout)
/// plus the optional lane-packed `i16` copy (`ins16`-strided, zero
/// padded) built at `program` time when the `_mm256_madd_epi16` path is
/// overflow-safe.
pub(crate) struct ExactCodes<'a> {
    /// Row-major `outs x ins` signed codes.
    pub codes: &'a [i32],
    /// Lane-packed `i16` codes (`outs x ins16`), empty when ineligible.
    pub codes16: &'a [i16],
    /// Row stride of `codes16`: `ins` rounded up to 16 lanes.
    pub ins16: usize,
    /// Output rows.
    pub outs: usize,
    /// Dot-product depth.
    pub ins: usize,
}

/// Batched integer matmul `out[v][o] = sum_i codes[o][i] * acts[v][i]`,
/// dispatched by tier. Every tier computes the exact integer product —
/// bit-identical to [`scalar::matmul_into`] by construction (and by the
/// parity suites).
pub(crate) fn matmul_exact(
    kind: KernelKind,
    c: &ExactCodes<'_>,
    acts: &[i32],
    n: usize,
    out: &mut [i64],
    acts16: &mut Vec<i16>,
) {
    match kind {
        KernelKind::Scalar => scalar::matmul_into(c.codes, c.outs, c.ins, acts, n, out),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => avx2::matmul_exact(c, acts, n, out, acts16),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx512 => avx512::matmul_exact(c, acts, n, out, acts16),
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("SIMD tiers cannot be selected off x86_64"),
    }
}

/// Batch-transposed integer matmul over a lane-major `[ins x n_pad]`
/// activation panel: `out[v][o] = sum_i codes[o][i] * acts_t[i][v]`.
/// Dispatched by tier; exact on every tier. The SIMD paths require the
/// `i16`-eligibility proof (their lane accumulators are `i32`), so the
/// dispatcher falls back to the scalar reference when `codes16` is
/// empty.
pub(crate) fn matmul_exact_t(
    kind: KernelKind,
    c: &ExactCodes<'_>,
    acts_t: &[i32],
    n: usize,
    n_pad: usize,
    out: &mut [i64],
) {
    match kind {
        KernelKind::Scalar => {
            scalar::matmul_transposed(c.codes, c.outs, c.ins, acts_t, n, n_pad, out)
        }
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 if !c.codes16.is_empty() => {
            avx2::matmul_transposed(c, acts_t, n, n_pad, out)
        }
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx512 if !c.codes16.is_empty() => {
            avx512::matmul_transposed(c, acts_t, n, n_pad, out);
        }
        _ => scalar::matmul_transposed(c.codes, c.outs, c.ins, acts_t, n, n_pad, out),
    }
}

/// Repacks a row-major activation block into the lane-major
/// `[ins x n_pad]` panel the transposed kernels consume:
/// `acts_t[i*n_pad + v] = acts[v*ins + i]`. Dispatched by tier — the
/// SIMD tiers turn the strided transpose into hardware gathers, which
/// is where the panel pipeline spends its time at small `n`. Every tier
/// writes identical live lanes; padding lanes may be left stale or
/// zeroed (both within the code range the panel kernels tolerate).
pub(crate) fn repack_transposed(
    kind: KernelKind,
    acts: &[i32],
    ins: usize,
    n: usize,
    n_pad: usize,
    acts_t: &mut [i32],
) {
    match kind {
        KernelKind::Scalar => scalar::repack_transposed(acts, ins, n, n_pad, acts_t),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => avx2::repack_transposed(acts, ins, n, n_pad, acts_t),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx512 => avx512::repack_transposed(acts, ins, n, n_pad, acts_t),
        #[allow(unreachable_patterns)]
        _ => scalar::repack_transposed(acts, ins, n, n_pad, acts_t),
    }
}

/// Shape constants of one event-counter fold, shared by every tier.
pub(crate) struct FoldParams<'a> {
    /// Global `(lo, hi)` activation-row ranges of every analog group, in
    /// row order (precomputed at `program` time; groups never span a row
    /// tile).
    pub group_bounds: &'a [(u32, u32)],
    /// Activation chunk count (`ceil(act_bits / chunk_bits)`).
    pub n_chunks: usize,
    /// Bits per activation chunk.
    pub chunk_bits: u8,
    /// Column tiles every group evaluation fans across.
    pub col_tiles: u64,
    /// Bit lines digitized per group evaluation.
    pub cols: u64,
}

/// The one shared event-counter fold (the satellite fix for the
/// duplicated walks): derives each vector's
/// `(analog_evaluations, adc_conversions, wl_pulses)` from pulse
/// activity alone — a group evaluates for a chunk iff any of its rows
/// carries a nonzero pulse in that chunk — and **accumulates** into
/// `counters[v]`. Both batch kernels call this, so the SIMD tier can
/// never drift from the statistics the scalar tier reports.
pub(crate) fn fold_event_counters(
    kind: KernelKind,
    acts: &[i32],
    ins: usize,
    n: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
    bitmaps: &mut Vec<u64>,
) {
    match kind {
        KernelKind::Scalar => scalar::fold_event_counters(acts, ins, n, p, counters),
        #[cfg(target_arch = "x86_64")]
        // The vectorized fold pays per-vector reduction overhead; below
        // ~64 rows it cannot win. Both are exact, so the cutover is a
        // pure-speed heuristic.
        KernelKind::Avx2 if ins >= 64 && p.n_chunks <= 4 => {
            avx2::fold_event_counters(acts, ins, n, p, counters, bitmaps);
        }
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx512 if ins >= 64 && p.n_chunks <= 4 => {
            avx512::fold_event_counters(acts, ins, n, p, counters, bitmaps);
        }
        #[cfg(target_arch = "x86_64")]
        // Below the vector cutover, the tier-2 win is table-driven chunk
        // spreading (one load+add per activation) at the paper chunking —
        // pure safe Rust, shared by both SIMD tiers.
        KernelKind::Avx2 | KernelKind::Avx512 if p.chunk_bits == 2 && p.n_chunks == 4 => {
            let _ = bitmaps;
            avx2::fold_event_counters_small(acts, ins, n, p, counters);
        }
        #[allow(unreachable_patterns)]
        _ => {
            let _ = bitmaps;
            scalar::fold_event_counters(acts, ins, n, p, counters);
        }
    }
}

/// Batch-transposed event-counter fold: same statistics as
/// [`fold_event_counters`], derived from a lane-major `[ins x n_pad]`
/// panel instead of row-major activations. Counter arithmetic is pure
/// integer accumulation, so the transposed walk is bit-identical to the
/// row-major one by construction (and pinned by the parity suites).
pub(crate) fn fold_event_counters_t(
    kind: KernelKind,
    acts_t: &[i32],
    ins: usize,
    n: usize,
    n_pad: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
) {
    // The vectorized transposed folds keep per-chunk pulse totals in
    // i32 lanes; bound the worst-case per-lane sum so they stay exact.
    #[cfg(target_arch = "x86_64")]
    let lanes_exact = p.n_chunks <= 4
        && (ins as u64) * (((1u64 << p.chunk_bits) - 1) * p.n_chunks as u64) < i32::MAX as u64;
    match kind {
        KernelKind::Scalar => scalar::fold_event_counters_t(acts_t, ins, n, n_pad, p, counters),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 if lanes_exact => {
            avx2::fold_event_counters_t(acts_t, ins, n, n_pad, p, counters);
        }
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx512 if lanes_exact => {
            avx512::fold_event_counters_t(acts_t, ins, n, n_pad, p, counters);
        }
        #[allow(unreachable_patterns)]
        _ => scalar::fold_event_counters_t(acts_t, ins, n, n_pad, p, counters),
    }
}

/// Discharge counts of one stored column mask against the staged pulse
/// bit-planes of a whole block:
/// `counts[v] = sum_b 2^b * popcount(mask & planes[b][v])`, with the
/// plane-major staging layout `planes[b * n_pad + v]`. Dispatched by
/// tier; `counts.len()` is the lane-padded block size `n_pad`.
pub(crate) fn group_counts(
    kind: KernelKind,
    mask: u64,
    planes: &[u64],
    n_planes: usize,
    n_pad: usize,
    counts: &mut [u64],
) {
    match kind {
        KernelKind::Scalar => scalar::group_counts(mask, planes, n_planes, n_pad, counts),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => avx2::group_counts(mask, planes, n_planes, n_pad, counts),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx512 => avx512::group_counts(mask, planes, n_planes, n_pad, counts),
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("SIMD tiers cannot be selected off x86_64"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_resolution_is_host_consistent() {
        assert_eq!(KernelDispatch::Scalar.resolve(), KernelKind::Scalar);
        let auto = KernelDispatch::Auto.resolve();
        let forced2 = KernelDispatch::Avx2.resolve();
        let forced512 = KernelDispatch::Avx512.resolve();
        if avx512_available() {
            assert_eq!(auto, KernelKind::Avx512);
            assert_eq!(forced512, KernelKind::Avx512);
            assert_eq!(forced2, KernelKind::Avx2);
        } else if avx2_available() {
            // Forcing a tier on a host without it downgrades to the
            // widest available tier (with a warning) instead of
            // aborting.
            assert_eq!(auto, KernelKind::Avx2);
            assert_eq!(forced2, KernelKind::Avx2);
            assert_eq!(forced512, KernelKind::Avx2);
        } else {
            assert_eq!(auto, KernelKind::Scalar);
            assert_eq!(forced2, KernelKind::Scalar);
            assert_eq!(forced512, KernelKind::Scalar);
        }
        let kinds = available_kinds();
        assert_eq!(kinds[0], KernelKind::Scalar);
        assert_eq!(
            kinds.len(),
            1 + avx2_available() as usize + avx512_available() as usize
        );
    }

    #[test]
    fn forced_isa_downgrade_notes_instead_of_panicking() {
        // Re-run this test binary with each SIMD tier pinned via
        // `YOLOC_KERNEL`. On a host without the ISA the probe must
        // downgrade with a one-time note and still produce correct
        // results — a pinned CI environment stays runnable everywhere.
        let exe = std::env::current_exe().expect("test binary path");
        for forced in ["avx2", "avx512"] {
            let out = std::process::Command::new(&exe)
                .args([
                    "--exact",
                    "kernels::tests::forced_isa_probe_helper",
                    "--include-ignored",
                    "--nocapture",
                ])
                .env("YOLOC_KERNEL", forced)
                .output()
                .expect("spawn probe");
            assert!(
                out.status.success(),
                "YOLOC_KERNEL={forced} probe failed:\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            let missing = match forced {
                "avx2" => !avx2_available(),
                _ => !avx512_available(),
            };
            if missing {
                let err = String::from_utf8_lossy(&out.stderr);
                assert!(
                    err.contains("not available"),
                    "downgrade note missing from stderr:\n{err}"
                );
            }
        }
    }

    #[test]
    #[ignore = "helper: re-invoked by forced_isa_downgrade_notes_instead_of_panicking"]
    fn forced_isa_probe_helper() {
        use crate::macro_model::{MacroParams, RomMvm};
        use rand::{rngs::StdRng, SeedableRng};
        // Resolving a forced-but-unavailable tier must downgrade, never
        // panic, and the downgraded engine must still match the
        // cell-accurate analog reference.
        let kind = KernelDispatch::from_env().resolve();
        assert!(available_kinds().contains(&kind));
        let params = MacroParams::rom_paper();
        let (outs, ins) = (4, 96);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 29) % 255) as i32 - 127)
            .collect();
        let acts: Vec<i32> = (0..ins).map(|i| ((i * 11) % 256) as i32).collect();
        let engine = RomMvm::program(params, &codes, outs, ins);
        let mut rng = StdRng::seed_from_u64(9);
        let (y, _) = engine.mvm(&acts, &mut rng);
        let (y_ref, _) = engine.mvm_analog(&acts, &mut rng);
        assert_eq!(y, y_ref);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(KernelKind::Scalar.label(), "scalar");
        assert_eq!(KernelKind::Avx2.label(), "avx2");
        assert_eq!(KernelKind::Avx512.label(), "avx512");
    }

    #[test]
    fn layout_crossover_is_shape_driven() {
        // Fold-bound shapes with real batch depth go transposed: narrow
        // im2col shapes, every mid shape up to 16 outputs, and 32
        // outputs while ins stays moderate…
        assert_eq!(choose_layout(1, 9, 256, true), MatmulLayout::Transposed);
        assert_eq!(choose_layout(4, 18, 256, true), MatmulLayout::Transposed);
        assert_eq!(choose_layout(1, 64, 8, true), MatmulLayout::Transposed);
        assert_eq!(choose_layout(16, 72, 256, true), MatmulLayout::Transposed);
        assert_eq!(choose_layout(32, 144, 256, true), MatmulLayout::Transposed);
        // …matmul-bound shapes stay row-major (madd across ins already
        // fills lanes, and the repack toll scales with ins), as do
        // degenerate batches and non-i16 shapes.
        assert_eq!(choose_layout(32, 288, 256, true), MatmulLayout::RowMajor);
        assert_eq!(choose_layout(64, 288, 16, true), MatmulLayout::RowMajor);
        assert_eq!(choose_layout(1, 9, 1, true), MatmulLayout::RowMajor);
        assert_eq!(choose_layout(4, 18, 2, true), MatmulLayout::RowMajor);
        assert_eq!(choose_layout(1, 9, 256, false), MatmulLayout::RowMajor);
        // Panel padding covers one AVX-512 register even for tiny n.
        assert_eq!(transposed_pad(1), 16);
        assert_eq!(transposed_pad(16), 16);
        assert_eq!(transposed_pad(17), 32);
    }

    #[test]
    fn primitive_kernels_match_scalar_reference_on_every_tier() {
        // Direct primitive-level parity on irregular shapes (remainders
        // in every dimension); the macro-level parity suites cover the
        // same tiers end to end.
        let (outs, ins, n) = (7usize, 83usize, 5usize);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| (i as i32 * 37) % 255 - 127)
            .collect();
        let acts: Vec<i32> = (0..n * ins).map(|i| (i as i32 * 13) % 256).collect();
        let packed = pack_codes16(&codes, outs, ins);
        let (codes16, ins16) = (packed.data(), packed.stride());
        assert_eq!(ins16, ins.next_multiple_of(16));
        // The transposed panel carries the same values lane-major.
        let n_pad = transposed_pad(n);
        let mut acts_t = vec![0i32; ins * n_pad];
        for v in 0..n {
            for i in 0..ins {
                acts_t[i * n_pad + v] = acts[v * ins + i];
            }
        }
        let mut reference = vec![0i64; n * outs];
        scalar::matmul_into(&codes, outs, ins, &acts, n, &mut reference);
        let bounds: Vec<(u32, u32)> = (0..ins as u32)
            .step_by(10)
            .map(|lo| (lo, (lo + 10).min(ins as u32)))
            .collect();
        let fold = FoldParams {
            group_bounds: &bounds,
            n_chunks: 4,
            chunk_bits: 2,
            col_tiles: 3,
            cols: 256,
        };
        let mut ref_counters = vec![[0u64; 3]; n];
        scalar::fold_event_counters(&acts, ins, n, &fold, &mut ref_counters);
        for kind in available_kinds() {
            for with_i16 in [false, true] {
                let c = ExactCodes {
                    codes: &codes,
                    codes16: if with_i16 { codes16 } else { &[] },
                    ins16: if with_i16 { ins16 } else { 0 },
                    outs,
                    ins,
                };
                let mut out = vec![0i64; n * outs];
                let mut acts16 = Vec::new();
                matmul_exact(kind, &c, &acts, n, &mut out, &mut acts16);
                assert_eq!(out, reference, "{} matmul (i16={with_i16})", kind.label());
                out.fill(0);
                matmul_exact_t(kind, &c, &acts_t, n, n_pad, &mut out);
                assert_eq!(
                    out,
                    reference,
                    "{} transposed matmul (i16={with_i16})",
                    kind.label()
                );
            }
            let mut counters = vec![[0u64; 3]; n];
            let mut bitmaps = Vec::new();
            fold_event_counters(kind, &acts, ins, n, &fold, &mut counters, &mut bitmaps);
            assert_eq!(counters, ref_counters, "{} fold", kind.label());
            counters.iter_mut().for_each(|c| *c = [0; 3]);
            fold_event_counters_t(kind, &acts_t, ins, n, n_pad, &fold, &mut counters);
            assert_eq!(counters, ref_counters, "{} transposed fold", kind.label());
        }
        // Popcount stream parity over staged planes, at both staging
        // paddings (4 for scalar/AVX2, 8 for the AVX-512 vpopcntq
        // stream).
        for plane_pad in [4usize, 8] {
            let (n_planes, n_pad) = (2, 2 * plane_pad);
            let planes: Vec<u64> = (0..n_planes * n_pad)
                .map(|i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .collect();
            let mask = 0x0000_03ffu64; // 10-row group mask
            let mut ref_counts = vec![0u64; n_pad];
            scalar::group_counts(mask, &planes, n_planes, n_pad, &mut ref_counts);
            for kind in available_kinds() {
                if n_pad % kind.plane_pad() != 0 {
                    continue;
                }
                let mut counts = vec![0u64; n_pad];
                group_counts(kind, mask, &planes, n_planes, n_pad, &mut counts);
                assert_eq!(counts, ref_counts, "{} group_counts", kind.label());
            }
        }
    }
}
