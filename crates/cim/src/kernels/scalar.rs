//! The portable scalar kernel tier — the bit-identical reference every
//! other tier is pinned against. No `unsafe`, no ISA assumptions.

use super::FoldParams;

/// The one row-major integer matmul every digital path shares:
/// `out[v*outs + o] = sum_i codes[o*ins + i] * acts[v*ins + i]` — used by
/// [`reference_mvm`], the software backend's batch entry and the scalar
/// tier of [`RomMvm::mvm_batch_exact`], so the arithmetic can never
/// diverge between them.
///
/// [`reference_mvm`]: crate::macro_model::reference_mvm
/// [`RomMvm::mvm_batch_exact`]: crate::macro_model::RomMvm
pub(crate) fn matmul_into(
    codes: &[i32],
    outs: usize,
    ins: usize,
    acts: &[i32],
    n: usize,
    out: &mut [i64],
) {
    debug_assert_eq!(codes.len(), outs * ins);
    debug_assert_eq!(acts.len(), n * ins);
    debug_assert_eq!(out.len(), n * outs);
    for v in 0..n {
        let av = &acts[v * ins..(v + 1) * ins];
        for (o, slot) in out[v * outs..(v + 1) * outs].iter_mut().enumerate() {
            *slot = codes[o * ins..(o + 1) * ins]
                .iter()
                .zip(av)
                .map(|(&w, &a)| w as i64 * a as i64)
                .sum();
        }
    }
}

/// Scalar event-counter fold: one pass over each vector's activation
/// codes, accumulating all chunks simultaneously. A group is *active*
/// for a chunk iff the OR of its rows has a nonzero field at that
/// chunk's bit position — the same predicate the per-(tile, chunk)
/// popcount walk applies, folded over the whole vector at once (legal
/// because a silent `(tile, chunk)` step contributes zero to every
/// counter, and the per-tile column fan-out `col_tiles` is a constant).
pub(crate) fn fold_event_counters(
    acts: &[i32],
    ins: usize,
    n: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
) {
    debug_assert!(p.n_chunks <= 8, "chunk count exceeds the fold accumulators");
    debug_assert_eq!(counters.len(), n);
    debug_assert_eq!(acts.len(), n * ins);
    let chunk_mask = (1u32 << p.chunk_bits) - 1;
    for (v, c) in counters.iter_mut().enumerate() {
        let av = &acts[v * ins..(v + 1) * ins];
        let mut totals = [0u64; 8];
        let mut actives = [0u64; 8];
        for &(lo, hi) in p.group_bounds {
            let mut group_or = 0u32;
            for &a in &av[lo as usize..hi as usize] {
                let a = a as u32;
                group_or |= a;
                for (ci, t) in totals[..p.n_chunks].iter_mut().enumerate() {
                    *t += ((a >> (ci as u32 * p.chunk_bits as u32)) & chunk_mask) as u64;
                }
            }
            for (ci, act) in actives[..p.n_chunks].iter_mut().enumerate() {
                if (group_or >> (ci as u32 * p.chunk_bits as u32)) & chunk_mask != 0 {
                    *act += 1;
                }
            }
        }
        let active: u64 = actives[..p.n_chunks].iter().sum();
        let total: u64 = totals[..p.n_chunks].iter().sum();
        c[0] += active * p.col_tiles;
        c[1] += active * p.cols * p.col_tiles;
        c[2] += total * p.col_tiles;
    }
}

/// Scalar discharge-count stream for one stored column mask against the
/// plane-major staged pulse bit-planes (`planes[b * n_pad + v]`).
pub(crate) fn group_counts(
    mask: u64,
    planes: &[u64],
    n_planes: usize,
    n_pad: usize,
    counts: &mut [u64],
) {
    debug_assert!(planes.len() >= n_planes * n_pad);
    debug_assert_eq!(counts.len(), n_pad);
    if n_planes == 0 {
        counts.fill(0);
        return;
    }
    let (first, rest) = planes[..n_planes * n_pad].split_at(n_pad);
    for (c, &pl) in counts.iter_mut().zip(first) {
        *c = (mask & pl).count_ones() as u64;
    }
    for (b, plane) in rest.chunks_exact(n_pad).enumerate() {
        let w = 1u64 << (b + 1);
        for (c, &pl) in counts.iter_mut().zip(plane) {
            *c += w * (mask & pl).count_ones() as u64;
        }
    }
}
