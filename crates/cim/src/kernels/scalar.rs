//! The portable scalar kernel tier — the bit-identical reference every
//! other tier is pinned against. No `unsafe`, no ISA assumptions.

use super::FoldParams;

/// The one row-major integer matmul every digital path shares:
/// `out[v*outs + o] = sum_i codes[o*ins + i] * acts[v*ins + i]` — used by
/// [`reference_mvm`], the software backend's batch entry and the scalar
/// tier of [`RomMvm::mvm_batch_exact`], so the arithmetic can never
/// diverge between them.
///
/// [`reference_mvm`]: crate::macro_model::reference_mvm
/// [`RomMvm::mvm_batch_exact`]: crate::macro_model::RomMvm
pub(crate) fn matmul_into(
    codes: &[i32],
    outs: usize,
    ins: usize,
    acts: &[i32],
    n: usize,
    out: &mut [i64],
) {
    debug_assert_eq!(codes.len(), outs * ins);
    debug_assert_eq!(acts.len(), n * ins);
    debug_assert_eq!(out.len(), n * outs);
    for v in 0..n {
        let av = &acts[v * ins..(v + 1) * ins];
        for (o, slot) in out[v * outs..(v + 1) * outs].iter_mut().enumerate() {
            *slot = codes[o * ins..(o + 1) * ins]
                .iter()
                .zip(av)
                .map(|(&w, &a)| w as i64 * a as i64)
                .sum();
        }
    }
}

/// The batch-transposed reference matmul over a lane-major
/// `[ins x n_pad]` panel: `out[v*outs + o] = sum_i codes[o*ins + i] *
/// acts_t[i*n_pad + v]`. Same arithmetic as [`matmul_into`] in a
/// different traversal order (each addend is an exact `i64` product, so
/// ordering cannot change the sum) — this entry keeps the scalar tier
/// the parity oracle for the transposed SIMD paths.
pub(crate) fn matmul_transposed(
    codes: &[i32],
    outs: usize,
    ins: usize,
    acts_t: &[i32],
    n: usize,
    n_pad: usize,
    out: &mut [i64],
) {
    debug_assert_eq!(codes.len(), outs * ins);
    debug_assert!(n_pad >= n);
    debug_assert!(acts_t.len() >= ins * n_pad);
    debug_assert_eq!(out.len(), n * outs);
    out.fill(0);
    for (o, row) in codes.chunks_exact(ins).enumerate() {
        for (i, &w) in row.iter().enumerate() {
            let lane = &acts_t[i * n_pad..i * n_pad + n];
            for (v, &a) in lane.iter().enumerate() {
                out[v * outs + o] += w as i64 * a as i64;
            }
        }
    }
}

/// Scalar reference for the row-major -> lane-major panel repack:
/// `acts_t[i*n_pad + v] = acts[v*ins + i]` for every live vector.
/// Blocked over vectors so the activation rows of a block stay
/// cache-resident while each panel lane receives a contiguous burst of
/// writes. Padding lanes (`v >= n`) are left untouched — the panel
/// kernels never read them back.
pub(crate) fn repack_transposed(
    acts: &[i32],
    ins: usize,
    n: usize,
    n_pad: usize,
    acts_t: &mut [i32],
) {
    debug_assert!(acts.len() >= n * ins);
    debug_assert!(n_pad >= n);
    debug_assert!(acts_t.len() >= ins * n_pad);
    const REPACK_BLOCK: usize = 64;
    let mut v0 = 0;
    while v0 < n {
        let v1 = (v0 + REPACK_BLOCK).min(n);
        for i in 0..ins {
            let lane = &mut acts_t[i * n_pad + v0..i * n_pad + v1];
            for (dv, slot) in lane.iter_mut().enumerate() {
                *slot = acts[(v0 + dv) * ins + i];
            }
        }
        v0 = v1;
    }
}

/// Scalar event-counter fold: one pass over each vector's activation
/// codes, accumulating all chunks simultaneously. A group is *active*
/// for a chunk iff the OR of its rows has a nonzero field at that
/// chunk's bit position — the same predicate the per-(tile, chunk)
/// popcount walk applies, folded over the whole vector at once (legal
/// because a silent `(tile, chunk)` step contributes zero to every
/// counter, and the per-tile column fan-out `col_tiles` is a constant).
pub(crate) fn fold_event_counters(
    acts: &[i32],
    ins: usize,
    n: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
) {
    debug_assert!(p.n_chunks <= 8, "chunk count exceeds the fold accumulators");
    debug_assert_eq!(counters.len(), n);
    debug_assert_eq!(acts.len(), n * ins);
    let chunk_mask = (1u32 << p.chunk_bits) - 1;
    for (v, c) in counters.iter_mut().enumerate() {
        let av = &acts[v * ins..(v + 1) * ins];
        let mut totals = [0u64; 8];
        let mut actives = [0u64; 8];
        for &(lo, hi) in p.group_bounds {
            let mut group_or = 0u32;
            for &a in &av[lo as usize..hi as usize] {
                let a = a as u32;
                group_or |= a;
                for (ci, t) in totals[..p.n_chunks].iter_mut().enumerate() {
                    *t += ((a >> (ci as u32 * p.chunk_bits as u32)) & chunk_mask) as u64;
                }
            }
            for (ci, act) in actives[..p.n_chunks].iter_mut().enumerate() {
                if (group_or >> (ci as u32 * p.chunk_bits as u32)) & chunk_mask != 0 {
                    *act += 1;
                }
            }
        }
        let active: u64 = actives[..p.n_chunks].iter().sum();
        let total: u64 = totals[..p.n_chunks].iter().sum();
        c[0] += active * p.col_tiles;
        c[1] += active * p.cols * p.col_tiles;
        c[2] += total * p.col_tiles;
    }
}

/// Batch-transposed scalar event-counter fold: identical statistics to
/// [`fold_event_counters`], derived from the lane-major `[ins x n_pad]`
/// panel. Pure integer accumulation in a different traversal order, so
/// it is bit-identical to the row-major fold by construction.
pub(crate) fn fold_event_counters_t(
    acts_t: &[i32],
    ins: usize,
    n: usize,
    n_pad: usize,
    p: &FoldParams<'_>,
    counters: &mut [[u64; 3]],
) {
    debug_assert!(p.n_chunks <= 8, "chunk count exceeds the fold accumulators");
    debug_assert_eq!(counters.len(), n);
    debug_assert!(n_pad >= n);
    debug_assert!(acts_t.len() >= ins * n_pad);
    let chunk_mask = (1u32 << p.chunk_bits) - 1;
    // Per-vector strided walk with stack accumulators: slower than the
    // SIMD lane walk but allocation-free (this entry runs inside the
    // zero-alloc arena steady state as the reference and the fallback).
    for (v, c) in counters.iter_mut().enumerate() {
        let mut totals = [0u64; 8];
        let mut actives = [0u64; 8];
        for &(lo, hi) in p.group_bounds {
            let mut group_or = 0u32;
            for i in lo as usize..hi as usize {
                let a = acts_t[i * n_pad + v] as u32;
                group_or |= a;
                for (ci, t) in totals[..p.n_chunks].iter_mut().enumerate() {
                    *t += ((a >> (ci as u32 * p.chunk_bits as u32)) & chunk_mask) as u64;
                }
            }
            for (ci, act) in actives[..p.n_chunks].iter_mut().enumerate() {
                if (group_or >> (ci as u32 * p.chunk_bits as u32)) & chunk_mask != 0 {
                    *act += 1;
                }
            }
        }
        let active: u64 = actives[..p.n_chunks].iter().sum();
        let total: u64 = totals[..p.n_chunks].iter().sum();
        c[0] += active * p.col_tiles;
        c[1] += active * p.cols * p.col_tiles;
        c[2] += total * p.col_tiles;
    }
}

/// Scalar discharge-count stream for one stored column mask against the
/// plane-major staged pulse bit-planes (`planes[b * n_pad + v]`).
pub(crate) fn group_counts(
    mask: u64,
    planes: &[u64],
    n_planes: usize,
    n_pad: usize,
    counts: &mut [u64],
) {
    debug_assert!(planes.len() >= n_planes * n_pad);
    debug_assert_eq!(counts.len(), n_pad);
    if n_planes == 0 {
        counts.fill(0);
        return;
    }
    let (first, rest) = planes[..n_planes * n_pad].split_at(n_pad);
    for (c, &pl) in counts.iter_mut().zip(first) {
        *c = (mask & pl).count_ones() as u64;
    }
    for (b, plane) in rest.chunks_exact(n_pad).enumerate() {
        let w = 1u64 << (b + 1);
        for (c, &pl) in counts.iter_mut().zip(plane) {
            *c += w * (mask & pl).count_ones() as u64;
        }
    }
}
