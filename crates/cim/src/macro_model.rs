//! The ROM-CiM macro of Fig. 5 and its SRAM-CiM counterpart.
//!
//! A macro is a stack of 128x256 subarrays with 16 column-shared ADCs per
//! subarray, input serial-bit drivers, prechargers and a shift-&-add unit.
//! This module provides
//!
//! * [`MacroParams`] — the circuit-level parameters (geometry, per-event
//!   energies, peripheral areas) from which every Table I figure is
//!   *computed*, not hard-coded;
//! * [`MacroSpec`] — the computed Table I specification summary;
//! * [`RomMvm`] — a functional matrix-vector engine that programs quantized
//!   weights into analog subarrays and executes the bit-serial datapath,
//!   with energy/latency statistics.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::analog::{AdcModel, AnalogArray, AnalogConfig};
use crate::cells::CellKind;
use crate::faults::{self, AdcFault, ColumnFaults, FaultContext};
use crate::kernels::{self, KernelDispatch, KernelKind};
use yoloc_quant::bitplane::{signed_bitplanes, signed_plane_weight, unsigned_chunks};

pub(crate) use crate::kernels::scalar::matmul_into;

/// Circuit-level parameters of a CiM macro.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacroParams {
    /// Bit-cell implementation.
    pub cell: CellKind,
    /// Word lines per subarray.
    pub rows: usize,
    /// Bit lines per subarray.
    pub cols: usize,
    /// Column-shared ADCs per subarray (16 in Fig. 5: 256 / 16 columns per
    /// ADC).
    pub adcs_per_subarray: usize,
    /// Subarrays in the macro.
    pub subarrays: usize,
    /// Rows activated simultaneously per analog evaluation.
    pub rows_per_activation: usize,
    /// ADC resolution in bits.
    pub adc_bits: u8,
    /// Weight precision in bits.
    pub weight_bits: u8,
    /// Activation precision in bits.
    pub act_bits: u8,
    /// Activation digit width driven per cycle (2 -> 0..=3 unary pulses).
    pub chunk_bits: u8,
    /// Gaussian bit-line noise sigma in discharge-count units.
    pub noise_sigma: f32,
    /// Time for one macro MAC inference (Table I: 8.9 ns).
    pub t_inference_ns: f64,
    /// Energy per ADC conversion, pJ.
    pub e_adc_pj: f64,
    /// Energy per word-line pulse, pJ.
    pub e_wl_pulse_pj: f64,
    /// Energy per bit-line precharge (per column per evaluation), pJ.
    pub e_precharge_pj: f64,
    /// Shift-&-add + control energy per inference, pJ.
    pub e_shift_add_pj: f64,
    /// SRAM-CiM only: energy to write one weight bit into the array, pJ.
    /// Zero for ROM (mask-programmed).
    pub e_write_per_bit_pj: f64,
    /// ADC area, µm² each.
    pub a_adc_um2: f64,
    /// Word-line driver area, µm² per row.
    pub a_driver_um2: f64,
    /// Control + shift-&-add + (for SRAM) R/W interface area per subarray, µm².
    pub a_ctrl_um2: f64,
    /// Standby leakage per cell, pW (0 for ROM).
    pub standby_pw_per_cell: f64,
}

impl MacroParams {
    /// The proposed 28 nm ROM-CiM macro, calibrated so that [`MacroSpec`]
    /// reproduces Table I (1.2 Mb, 0.24 mm², 5 Mb/mm², 8.9 ns, 28.8 GOPS,
    /// 119.4 GOPS/mm², 11.5 TOPS/W).
    pub fn rom_paper() -> Self {
        MacroParams {
            cell: CellKind::Rom1T,
            rows: 128,
            cols: 256,
            adcs_per_subarray: 16,
            subarrays: 38,
            rows_per_activation: 10,
            adc_bits: 5,
            weight_bits: 8,
            act_bits: 8,
            chunk_bits: 2,
            noise_sigma: 0.0,
            t_inference_ns: 8.9,
            e_adc_pj: 0.045,
            e_wl_pulse_pj: 0.005,
            e_precharge_pj: 0.0015,
            e_shift_add_pj: 0.35,
            e_write_per_bit_pj: 0.0,
            a_adc_um2: 280.0,
            a_driver_um2: 8.0,
            a_ctrl_um2: 353.0,
            standby_pw_per_cell: 0.0,
        }
    }

    /// The iso-process SRAM-CiM macro modelled on the ISSCC'21 \[3\] 6T
    /// macro: same sensing datapath, 18.5x larger cells, an R/W interface
    /// (extra control area + per-bit write energy), and cell leakage.
    pub fn sram_paper() -> Self {
        MacroParams {
            cell: CellKind::Sram6TCim,
            subarrays: 12, // 384 kb macro as in [3]
            e_write_per_bit_pj: 0.35,
            // 6T cells load word/bit lines ~18x harder than the 1T ROM
            // cell; drive and precharge energy scale accordingly, putting
            // the SRAM-CiM macro ~10% below the ROM macro in TOPS/W.
            e_wl_pulse_pj: 0.0085,
            e_precharge_pj: 0.0026,
            // Calibrated so the SRAM-CiM macro density is 19x below the
            // ROM-CiM macro (paper 4.3.1); SRAM-CiM at 8-bit precision is
            // peripheral-dominated (R/W interface, per-column logic).
            a_ctrl_um2: 105_200.0,
            a_driver_um2: 14.0,
            standby_pw_per_cell: CellKind::Sram6TCim.standby_leakage_pw(),
            ..Self::rom_paper()
        }
    }

    /// An eDRAM-CiM macro (paper §2.3 related work): denser than SRAM-CiM
    /// (1T1C-class cells, ~3x the 6T-CiM density) but volatile with a
    /// refresh burden and tighter compute-accuracy margins. Included so
    /// the density/flexibility spectrum ROM < eDRAM < SRAM can be swept.
    pub fn edram_paper() -> Self {
        MacroParams {
            cell: CellKind::Sram6TCim, // area overridden via a_ctrl below
            subarrays: 24,
            // 1T1C cell ~6.2x the ROM cell (vs 18.5x for 6T-CiM).
            // Modelled by shrinking the peripheral budget proportionally.
            a_ctrl_um2: 32_000.0,
            a_driver_um2: 10.0,
            e_write_per_bit_pj: 0.15,
            // Refresh shows up as standby burn.
            standby_pw_per_cell: 4.0,
            ..Self::rom_paper()
        }
    }

    /// Capacity of one subarray in bits.
    pub fn subarray_bits(&self) -> u64 {
        (self.rows * self.cols) as u64
    }

    /// Total macro capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.subarray_bits() * self.subarrays as u64
    }

    /// Macro area in mm²: cells plus per-subarray peripherals.
    pub fn area_mm2(&self) -> f64 {
        let cell_area = self.capacity_bits() as f64 * self.cell.area_um2();
        let per_sub = self.adcs_per_subarray as f64 * self.a_adc_um2
            + self.rows as f64 * self.a_driver_um2
            + self.a_ctrl_um2;
        (cell_area + per_sub * self.subarrays as f64) / 1e6
    }

    /// MAC operations (multiply + add) per macro inference: one
    /// `rows_per_activation`-deep dot product at full precision counts
    /// 2 ops per input row, matching Table I's "operation number 256".
    pub fn ops_per_inference(&self) -> u64 {
        2 * self.rows as u64
    }

    /// Energy per macro inference in pJ.
    ///
    /// One inference is a full-precision MAC over all `rows` inputs for one
    /// output: `chunks x groups` analog evaluations, each digitizing the
    /// output's `weight_bits` bit-plane columns. The per-event constants
    /// are calibrated so the ROM macro lands on Table I's 11.5 TOPS/W.
    pub fn energy_per_inference_pj(&self) -> f64 {
        let chunks = self.act_bits.div_ceil(self.chunk_bits) as f64;
        let groups = self.rows.div_ceil(self.rows_per_activation) as f64;
        let evals = chunks * groups;
        let conversions = evals * self.weight_bits as f64;
        conversions * self.e_adc_pj
            + self.rows as f64 * chunks * self.e_wl_pulse_pj
            + evals * self.weight_bits as f64 * self.e_precharge_pj
            + self.e_shift_add_pj
    }

    /// The analog configuration of one subarray under these parameters.
    pub fn analog_config(&self) -> AnalogConfig {
        let max_pulses = (1u8 << self.chunk_bits) - 1;
        AnalogConfig {
            rows: self.rows,
            cols: self.cols,
            rows_per_activation: self.rows_per_activation,
            noise_sigma: self.noise_sigma,
            max_pulses,
            adc: if self.adc_bits >= 16 {
                AdcModel::Ideal
            } else {
                AdcModel::Sar {
                    bits: self.adc_bits,
                    full_scale: (self.rows_per_activation as u32) * max_pulses as u32,
                }
            },
        }
    }

    /// Computes the Table I style specification summary.
    pub fn spec(&self) -> MacroSpec {
        let ops = self.ops_per_inference();
        let throughput_gops = ops as f64 / self.t_inference_ns;
        let area = self.area_mm2();
        let e_inf_pj = self.energy_per_inference_pj();
        MacroSpec {
            process: "28nm CMOS".to_string(),
            macro_size_mb: self.capacity_bits() as f64 / 1_048_576.0,
            macro_area_mm2: area,
            density_mb_per_mm2: self.capacity_bits() as f64 / 1_048_576.0 / area,
            cell_area_um2: self.cell.area_um2(),
            weight_bits: self.weight_bits,
            act_bits: self.act_bits,
            inference_time_ns: self.t_inference_ns,
            operation_number: ops,
            throughput_gops,
            area_efficiency_gops_mm2: throughput_gops / area,
            energy_efficiency_tops_w: ops as f64 / e_inf_pj,
            standby_power_w: self.capacity_bits() as f64 * self.standby_pw_per_cell * 1e-12,
        }
    }
}

/// The Table I specification summary, computed from [`MacroParams`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MacroSpec {
    /// Process description.
    pub process: String,
    /// Macro capacity in Mb (binary).
    pub macro_size_mb: f64,
    /// Macro area in mm².
    pub macro_area_mm2: f64,
    /// Storage density in Mb/mm².
    pub density_mb_per_mm2: f64,
    /// Bit-cell area in µm².
    pub cell_area_um2: f64,
    /// Weight precision.
    pub weight_bits: u8,
    /// Activation precision.
    pub act_bits: u8,
    /// Time per macro MAC inference in ns.
    pub inference_time_ns: f64,
    /// Operations per inference.
    pub operation_number: u64,
    /// Throughput in GOPS.
    pub throughput_gops: f64,
    /// Area efficiency in GOPS/mm².
    pub area_efficiency_gops_mm2: f64,
    /// MAC energy efficiency in TOPS/W.
    pub energy_efficiency_tops_w: f64,
    /// Standby power in watts (0 for non-volatile ROM).
    pub standby_power_w: f64,
}

/// Runtime statistics of a functional MVM execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MvmStats {
    /// Analog group evaluations performed.
    pub analog_evaluations: u64,
    /// ADC conversions performed.
    pub adc_conversions: u64,
    /// Word-line pulses driven.
    pub wl_pulses: u64,
    /// Total energy in pJ under the macro's energy model.
    pub energy_pj: f64,
    /// Latency in ns assuming subarrays evaluate serially per row-tile and
    /// chunk (conservative; parallel activation divides this).
    pub latency_ns: f64,
}

impl MvmStats {
    /// Accumulates another execution's statistics into this one. Event
    /// counters add exactly; the floating-point energy/latency fields add
    /// in call order, so two reductions agree bit-for-bit only when they
    /// merge in the same sequence — the executor and the legacy pipeline
    /// both merge in op order for exactly this reason.
    pub fn merge(&mut self, other: &MvmStats) {
        self.analog_evaluations += other.analog_evaluations;
        self.adc_conversions += other.adc_conversions;
        self.wl_pulses += other.wl_pulses;
        self.energy_pj += other.energy_pj;
        self.latency_ns += other.latency_ns;
    }
}

/// Precomputed bit-plane popcount table for one programmed subarray.
///
/// `masks[group * cols + col]` packs the strapped (`'1'`) rows of one
/// activation group of column `col` into a `u64`: bit `k` is set when row
/// `group_start + k` is strapped. One analog group evaluation of a column
/// then reduces to `sum_b 2^b * popcount(mask & pulse_plane_b)` — the
/// discharge-count arithmetic without walking individual cells.
///
/// Alongside the dense table (which the per-vector fast path indexes at
/// random), the batched stream keeps a **lane-packed tile-major copy**:
/// `nz` lists only the nonzero column masks, grouped by activation group
/// (`nz_offsets[g]..nz_offsets[g + 1]`) and ordered `(output, bit-plane)`
/// within a group, each entry carrying its metadata as
/// `(o_local << 8) | plane`. The batch kernel therefore streams exactly
/// the masks that can contribute, contiguously, one L1-resident weight
/// tile at a time — and zero-mask columns (sparse codes) cost nothing.
#[derive(Debug, Clone)]
struct PopcountTile {
    masks: Vec<u64>,
    /// `(meta, mask)` for every nonzero column mask, tile-major.
    nz: Vec<(u32, u64)>,
    /// `groups + 1` prefix offsets into `nz`.
    nz_offsets: Vec<u32>,
}

/// A quantized weight matrix programmed into ROM-CiM subarrays, executing
/// MVMs through the analog datapath.
///
/// Logical layout: a `(outs, ins)` signed weight matrix. Physically, input
/// dimension maps to word lines (tiled by `rows`), and each output occupies
/// `weight_bits` adjacent bit lines (one per bit-plane), tiled across
/// subarrays of `cols` bit lines.
///
/// # Execution paths
///
/// [`RomMvm::mvm`] dispatches between two implementations that are
/// bit-identical whenever both are applicable (asserted by tests):
///
/// * the **analog reference path** ([`RomMvm::mvm_analog`]) walks every
///   cell through [`AnalogArray::evaluate`], modelling precharge, pulse
///   trains, noise injection and per-group ADC digitization explicitly;
/// * the **popcount fast path** uses the per-subarray popcount tables built at
///   [`RomMvm::program`] time to compute each group's discharge count with
///   two `AND`+`popcount` operations per column instead of a per-cell
///   loop, then applies the *same* ADC transfer function. It is used when
///   the macro is noiseless (`noise_sigma == 0`, so no RNG stream is
///   consumed) and `rows_per_activation` fits a 64-bit mask; it can be
///   disabled with [`RomMvm::set_fast_path`] to force the reference path.
pub struct RomMvm {
    params: MacroParams,
    /// `tiles[row_tile][col_tile]` of programmed subarrays.
    tiles: Vec<Vec<AnalogArray>>,
    /// Popcount tables parallel to `tiles`; `None` when
    /// `rows_per_activation` exceeds the 64-bit mask width.
    popcount_tiles: Option<Vec<Vec<PopcountTile>>>,
    /// The programmed weight codes (`outs x ins`, row-major), kept for
    /// the exact-matmul batch kernel — only when that kernel is
    /// reachable (noiseless macro, maskable groups, identity ADC), so
    /// configurations that can never take it pay no duplicate storage.
    codes: Vec<i32>,
    /// Lane-packed `i16` copy of `codes` (see
    /// [`kernels::pack_codes16`]), built only when the SIMD `madd` /
    /// transposed matmuls are overflow-safe (`weight_bits <= 8`,
    /// `act_bits <= 8`, `ins <= 32768` keeps every `i32` accumulator
    /// lane in range); the empty sentinel otherwise.
    codes16: kernels::PackedCodes16,
    /// Global `(lo, hi)` activation-row range of every analog group in
    /// row order — the precomputed walk the shared event-counter fold
    /// uses (groups never span a row-tile boundary).
    group_bounds: Vec<(u32, u32)>,
    /// The kernel tier batched MVMs execute on, resolved once at
    /// `program` time from `YOLOC_KERNEL` / feature detection.
    kernel: KernelKind,
    fast_path_enabled: bool,
    /// Cached stats-derivation constants (see [`StatsFinisher`]): every
    /// input is fixed at `program` time, so the batch entries read this
    /// instead of rebuilding the constants per call.
    finisher: StatsFinisher,
    /// Cached [`RomMvm::adc_is_identity`] answer — a pure function of
    /// `params` on a healthy macro (forced `false` when ADC faults are
    /// installed), queried on every batch entry and layout choice.
    adc_identity: bool,
    /// Per-tile ADC column fault tables, parallel to `tiles`; `None`
    /// on a healthy engine (see
    /// [`RomMvm::program_with_faults`]).
    adc_faults: Option<Vec<Vec<ColumnFaults>>>,
    ins: usize,
    outs: usize,
    outs_per_array: usize,
}

impl RomMvm {
    /// Programs a signed quantized weight matrix (`outs x ins`, row-major
    /// codes in the signed `weight_bits` range) into subarrays.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != outs * ins` or any code is out of range.
    pub fn program(params: MacroParams, codes: &[i32], outs: usize, ins: usize) -> Self {
        assert_eq!(codes.len(), outs * ins, "weight matrix size mismatch");
        let outs_per_array = params.cols / params.weight_bits as usize;
        assert!(outs_per_array > 0, "cols must fit one output");
        let row_tiles = ins.div_ceil(params.rows);
        let col_tiles = outs.div_ceil(outs_per_array);
        let cfg = params.analog_config();
        let rpa = params.rows_per_activation;
        let groups = params.rows.div_ceil(rpa);
        let build_popcount = rpa <= 64;
        let mut tiles = Vec::with_capacity(row_tiles);
        let mut popcount_tiles = build_popcount.then(|| Vec::with_capacity(row_tiles));
        for rt in 0..row_tiles {
            let mut row = Vec::with_capacity(col_tiles);
            let mut popcount_row = build_popcount.then(|| Vec::with_capacity(col_tiles));
            for ct in 0..col_tiles {
                // Build the bit matrix for this subarray.
                let mut bits = vec![false; params.rows * params.cols];
                for r in 0..params.rows {
                    let in_idx = rt * params.rows + r;
                    if in_idx >= ins {
                        break;
                    }
                    for o in 0..outs_per_array {
                        let out_idx = ct * outs_per_array + o;
                        if out_idx >= outs {
                            break;
                        }
                        let code = codes[out_idx * ins + in_idx];
                        let planes = signed_bitplanes(&[code], params.weight_bits);
                        for (j, plane) in planes.iter().enumerate() {
                            let col = o * params.weight_bits as usize + j;
                            bits[r * params.cols + col] = plane[0] == 1;
                        }
                    }
                }
                if let Some(pr) = popcount_row.as_mut() {
                    let mut masks = vec![0u64; groups * params.cols];
                    for r in 0..params.rows {
                        for c in 0..params.cols {
                            if bits[r * params.cols + c] {
                                masks[(r / rpa) * params.cols + c] |= 1u64 << (r % rpa);
                            }
                        }
                    }
                    // Lane-packed tile-major copy for the batch stream:
                    // only nonzero masks, grouped by activation group.
                    let wb = params.weight_bits as usize;
                    let mut nz = Vec::new();
                    let mut nz_offsets = Vec::with_capacity(groups + 1);
                    nz_offsets.push(0u32);
                    for g in 0..groups {
                        for o in 0..outs_per_array {
                            if ct * outs_per_array + o >= outs {
                                break;
                            }
                            for j in 0..wb {
                                let mask = masks[g * params.cols + o * wb + j];
                                if mask != 0 {
                                    nz.push((((o as u32) << 8) | j as u32, mask));
                                }
                            }
                        }
                        nz_offsets.push(u32::try_from(nz.len()).expect("nz list fits u32"));
                    }
                    pr.push(PopcountTile {
                        masks,
                        nz,
                        nz_offsets,
                    });
                }
                row.push(AnalogArray::from_bits(cfg, &bits));
            }
            tiles.push(row);
            if let (Some(pt), Some(pr)) = (popcount_tiles.as_mut(), popcount_row) {
                pt.push(pr);
            }
        }
        // Keep a flat copy of the codes only where the exact-matmul
        // batch kernel can actually run (noiseless, maskable groups,
        // identity ADC transfer) — noisy or overdriven configurations
        // would never read it.
        let exact_reachable = params.noise_sigma == 0.0
            && build_popcount
            && match cfg.adc {
                AdcModel::Ideal => true,
                AdcModel::Sar { bits, full_scale } => full_scale < (1u32 << bits),
            };
        // The SIMD `madd` and transposed tiers need a lane-packed i16
        // copy and an overflow proof: 8-bit signed codes x 8-bit
        // unsigned acts over at most 32768 inputs keeps every i32
        // accumulator lane in range.
        let i16_eligible =
            exact_reachable && params.weight_bits <= 8 && params.act_bits <= 8 && ins <= 32_768;
        let codes16 = if i16_eligible {
            kernels::pack_codes16(codes, outs, ins)
        } else {
            kernels::PackedCodes16::empty()
        };
        // Precompute the global activation-group walk for the shared
        // event-counter fold: groups are rpa-row runs that restart at
        // every row-tile boundary.
        assert!(ins <= u32::MAX as usize, "ins exceeds group-bound range");
        let mut group_bounds = Vec::new();
        for rt in 0..row_tiles {
            let lo = rt * params.rows;
            let hi = ((rt + 1) * params.rows).min(ins);
            let mut g = lo;
            while g < hi {
                let ge = (g + rpa).min(hi);
                group_bounds.push((g as u32, ge as u32));
                g = ge;
            }
        }
        let mut this = RomMvm {
            params,
            tiles,
            popcount_tiles,
            codes: if exact_reachable {
                codes.to_vec()
            } else {
                Vec::new()
            },
            codes16,
            group_bounds,
            kernel: KernelDispatch::from_env().resolve(),
            fast_path_enabled: true,
            finisher: StatsFinisher::default(),
            adc_identity: match cfg.adc {
                AdcModel::Ideal => true,
                AdcModel::Sar { bits, full_scale } => full_scale < (1u32 << bits),
            },
            adc_faults: None,
            ins,
            outs,
            outs_per_array,
        };
        this.finisher = this.stats_finisher();
        this
    }

    /// Programs a weight matrix onto a *faulty* fabric (see
    /// [`crate::faults`]): the effective weight codes are rewritten for
    /// stuck-at cells and dead subarrays, per-column ADC transfer
    /// faults are installed on every execution path, and degraded
    /// chiplet links scale the evaluation latency.
    ///
    /// Guarantees:
    ///
    /// * a fault-free context (`plan.is_none()` and unit slowdown)
    ///   delegates to [`RomMvm::program`] — the engine is structurally
    ///   identical, bit for bit, in values and statistics;
    /// * the same [`FaultContext`] always builds the same faulty
    ///   engine, and every kernel tier and execution path computes
    ///   identical results on it (the tier-parity suites run under
    ///   faults);
    /// * stuck/dead/ADC faults never change [`MvmStats`] (event
    ///   counters are pure functions of the activations); only
    ///   `link_slowdown` perturbs latency, deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `codes` mismatches `(outs, ins)`, a non-empty
    /// `ctx.phys_ids` does not cover the tile grid, or
    /// `ctx.link_slowdown <= 0`.
    pub fn program_with_faults(
        params: MacroParams,
        codes: &[i32],
        outs: usize,
        ins: usize,
        ctx: &FaultContext,
    ) -> Self {
        assert!(ctx.link_slowdown > 0.0, "link slowdown must be positive");
        if ctx.plan.is_none() && ctx.link_slowdown == 1.0 {
            return Self::program(params, codes, outs, ins);
        }
        let geom = faults::FabricGeometry::from_params(&params);
        let opa = geom.outs_per_array();
        let row_tiles = ins.div_ceil(params.rows);
        let col_tiles = outs.div_ceil(opa);
        let ids: Vec<u64> = if ctx.phys_ids.is_empty() {
            (0..(row_tiles * col_tiles) as u64).collect()
        } else {
            assert_eq!(
                ctx.phys_ids.len(),
                row_tiles * col_tiles,
                "one physical subarray id per tile"
            );
            ctx.phys_ids.to_vec()
        };
        // Stuck-at and dead-subarray faults become *effective code*
        // mutations: every path (analog, popcount, exact matmul, all
        // SIMD tiers) then computes on identical faulty weights with
        // no kernel changes at all.
        let mut eff = codes.to_vec();
        ctx.plan.apply_code_faults(&mut eff, outs, ins, &geom, &ids);
        let mut this = Self::program(params, &eff, outs, ins);
        // ADC transfer faults: per-column tables applied to the sensed
        // discharge count before digitization, on every path.
        let full_scale = params.rows_per_activation as u32 * ((1u32 << params.chunk_bits) - 1);
        let cols_per_adc = params.cols / params.adcs_per_subarray.max(1);
        let mut any_adc_fault = false;
        let mut tables: Vec<Vec<ColumnFaults>> = Vec::with_capacity(row_tiles);
        for rt in 0..row_tiles {
            let mut table_row = Vec::with_capacity(col_tiles);
            for ct in 0..col_tiles {
                let phys = ids[rt * col_tiles + ct];
                let mut table: ColumnFaults = vec![None; params.cols];
                // A dead subarray already contributes nothing; its ADC
                // state is unobservable.
                if !ctx.plan.subarray_dead(phys) {
                    for adc in 0..params.adcs_per_subarray {
                        if let Some(f) = ctx.plan.adc_fault(phys, adc as u64, full_scale) {
                            any_adc_fault = true;
                            for slot in table.iter_mut().skip(adc * cols_per_adc).take(cols_per_adc)
                            {
                                *slot = Some(f);
                            }
                        }
                    }
                }
                table_row.push(table);
            }
            tables.push(table_row);
        }
        if any_adc_fault {
            // A faulted ADC breaks the identity-transfer shortcut:
            // every batch entry must stream counts through the
            // per-column transfer, so the exact-matmul caches are
            // dropped and dispatch falls to the popcount mask stream.
            this.adc_identity = false;
            this.codes = Vec::new();
            this.codes16 = kernels::PackedCodes16::empty();
            for (rt, row) in this.tiles.iter_mut().enumerate() {
                for (ct, array) in row.iter_mut().enumerate() {
                    array.set_column_faults(tables[rt][ct].clone());
                }
            }
            this.adc_faults = Some(tables);
        }
        if ctx.link_slowdown != 1.0 {
            // A degraded chiplet link stretches every evaluation the
            // engine serializes over it.
            this.finisher.t_eval *= ctx.link_slowdown;
        }
        this
    }

    /// The installed ADC column fault of tile `(row_tile, col_tile)`
    /// at `col`, if any (primarily for tests and diagnostics).
    pub fn adc_fault_at(&self, row_tile: usize, col_tile: usize, col: usize) -> Option<AdcFault> {
        self.adc_faults
            .as_ref()
            .and_then(|af| af[row_tile][col_tile].get(col).copied().flatten())
    }

    /// Forces the batched MVM kernels onto a specific tier, overriding
    /// the `program`-time dispatch. Tier choice never changes results
    /// (CI-pinned by the kernel-parity suites); this exists for those
    /// suites and for benchmarking the tiers against each other.
    ///
    /// # Panics
    ///
    /// Panics if the requested tier cannot execute on this host.
    pub fn set_kernel(&mut self, kind: KernelKind) {
        match kind {
            KernelKind::Scalar => {}
            KernelKind::Avx2 => assert!(
                kernels::avx2_available(),
                "AVX2 kernel tier is not available on this host"
            ),
            KernelKind::Avx512 => assert!(
                kernels::avx512_available(),
                "AVX-512 kernel tier is not available on this host"
            ),
        }
        self.kernel = kind;
    }

    /// The kernel tier batched MVMs currently execute on.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// The fold-shape constants shared by both batch kernels.
    fn fold_params(&self) -> kernels::FoldParams<'_> {
        let p = &self.params;
        kernels::FoldParams {
            group_bounds: &self.group_bounds,
            n_chunks: p.act_bits.div_ceil(p.chunk_bits) as usize,
            chunk_bits: p.chunk_bits,
            col_tiles: self.tiles.first().map_or(0, |r| r.len()) as u64,
            cols: p.cols as u64,
        }
    }

    /// Enables or disables the popcount fast path (see the type docs).
    /// Disabling it forces every [`RomMvm::mvm`] through the cell-accurate
    /// analog reference path — useful for baselining and for verifying the
    /// two paths agree.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path_enabled = enabled;
    }

    /// Whether [`RomMvm::mvm`] will take the popcount fast path: enabled,
    /// noiseless, and `rows_per_activation` fits the 64-bit group masks.
    pub fn fast_path_active(&self) -> bool {
        self.fast_path_enabled && self.params.noise_sigma == 0.0 && self.popcount_tiles.is_some()
    }

    /// Logical dimensions `(outs, ins)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.outs, self.ins)
    }

    /// Total subarrays used.
    pub fn subarrays_used(&self) -> usize {
        self.tiles.iter().map(|r| r.len()).sum()
    }

    /// Exports the mask bit image the fab would receive for this
    /// programmed matrix (see [`crate::rom_image`]).
    pub fn rom_image(&self) -> crate::rom_image::RomImage {
        let mut img = crate::rom_image::RomImage::new(self.params.rows, self.params.cols);
        for row in &self.tiles {
            for array in row {
                let mut bits = Vec::with_capacity(self.params.rows * self.params.cols);
                for r in 0..self.params.rows {
                    for c in 0..self.params.cols {
                        bits.push(array.bit(r, c));
                    }
                }
                img.push_subarray(bits);
            }
        }
        img
    }

    /// Executes `y = W x` on unsigned activation codes (`0..2^act_bits`),
    /// returning the integer results and execution statistics.
    ///
    /// Dispatches to the popcount fast path when
    /// [`RomMvm::fast_path_active`] (the RNG is then untouched — a
    /// noiseless datapath consumes no randomness on either path), and to
    /// the analog reference path otherwise. Both paths produce identical
    /// results and statistics whenever both apply.
    ///
    /// # Panics
    ///
    /// Panics if `acts.len() != ins` or any code is out of range.
    pub fn mvm<R: Rng + ?Sized>(&self, acts: &[i32], rng: &mut R) -> (Vec<i64>, MvmStats) {
        if self.fast_path_active() {
            self.mvm_fast(acts)
        } else {
            self.mvm_analog(acts, rng)
        }
    }

    /// Executes `y = W x` on the popcount fast path: per activation group,
    /// the discharge count of every column comes from `AND`+`popcount`
    /// against the tables precomputed in [`RomMvm::program`], followed by
    /// the same per-group ADC transfer and shift-&-add recombination as
    /// the analog path.
    ///
    /// # Panics
    ///
    /// Panics if `acts.len() != ins`, any code is out of range, or the
    /// fast path is unavailable (`rows_per_activation > 64`).
    fn mvm_fast(&self, acts: &[i32]) -> (Vec<i64>, MvmStats) {
        assert_eq!(acts.len(), self.ins, "activation length mismatch");
        let p = &self.params;
        let popcount_tiles = self
            .popcount_tiles
            .as_ref()
            .expect("fast path requires popcount tables");
        let chunks = unsigned_chunks(acts, p.act_bits, p.chunk_bits);
        let wb = p.weight_bits as usize;
        let rpa = p.rows_per_activation;
        let n_groups = p.rows.div_ceil(rpa);
        let n_planes = p.chunk_bits as usize;
        let adc = p.analog_config().adc;
        let mut out = vec![0i64; self.outs];
        let mut stats = MvmStats::default();
        let mut plane_masks = vec![0u64; n_groups * n_planes];
        for (rt, tile_row) in popcount_tiles.iter().enumerate() {
            let row_lo = rt * p.rows;
            let row_hi = ((rt + 1) * p.rows).min(self.ins);
            for (c_idx, chunk) in chunks.iter().enumerate() {
                // Decompose this row tile's pulse vector into per-group
                // pulse bit-plane masks (bit k of plane b = bit b of the
                // pulse count on row `group_start + k`).
                plane_masks.fill(0);
                let mut total_pulses = 0u64;
                for (r, &pulse) in chunk[row_lo..row_hi].iter().enumerate() {
                    total_pulses += pulse as u64;
                    for (b, plane) in plane_masks
                        [(r / rpa) * n_planes..(r / rpa) * n_planes + n_planes]
                        .iter_mut()
                        .enumerate()
                    {
                        if (pulse >> b) & 1 == 1 {
                            *plane |= 1u64 << (r % rpa);
                        }
                    }
                }
                if total_pulses == 0 {
                    continue;
                }
                // Active groups match the analog path's silent-group skip.
                let active: Vec<usize> = (0..n_groups)
                    .filter(|g| {
                        plane_masks[g * n_planes..(g + 1) * n_planes]
                            .iter()
                            .any(|&m| m != 0)
                    })
                    .collect();
                let evals = active.len();
                let act_weight = 1i64 << (c_idx as u8 * p.chunk_bits);
                for (ct, tile) in tile_row.iter().enumerate() {
                    stats.analog_evaluations += evals as u64;
                    stats.adc_conversions += (evals * p.cols) as u64;
                    stats.wl_pulses += total_pulses;
                    let tile_faults = self.adc_faults.as_ref().map(|af| &af[rt][ct]);
                    for o in 0..self.outs_per_array {
                        let out_idx = ct * self.outs_per_array + o;
                        if out_idx >= self.outs {
                            break;
                        }
                        for j in 0..wb {
                            let col = o * wb + j;
                            let col_fault = tile_faults.and_then(|t| t[col]);
                            let mut col_total = 0i64;
                            for &g in &active {
                                let col_mask = tile.masks[g * p.cols + col];
                                let count: u32 = plane_masks[g * n_planes..(g + 1) * n_planes]
                                    .iter()
                                    .enumerate()
                                    .map(|(b, &m)| (1u32 << b) * (col_mask & m).count_ones())
                                    .sum();
                                let sensed = match col_fault {
                                    Some(f) => f.apply_count(u64::from(count)) as u32,
                                    None => count,
                                };
                                col_total += adc.digitize(sensed as f32);
                            }
                            out[out_idx] +=
                                act_weight * signed_plane_weight(j, p.weight_bits) * col_total;
                        }
                    }
                }
            }
        }
        self.finish_stats(&mut stats);
        (out, stats)
    }

    /// Asserts every activation code is in the unsigned `act_bits` range
    /// — the same hard failure the per-vector path raises through
    /// `unsigned_chunks`, checked once per batch so the batched kernels
    /// can never silently compute on sign-extended garbage.
    fn validate_act_codes(&self, acts: &[i32]) {
        // Reduced as an unsigned max so the scan auto-vectorizes: a
        // negative code casts to a huge `u32` and trips the same bound.
        let hi = 1u64 << self.params.act_bits;
        let worst = acts.iter().fold(0u32, |m, &a| m.max(a as u32));
        assert!(
            u64::from(worst) < hi,
            "activation code outside unsigned {}-bit range",
            self.params.act_bits
        );
    }

    /// Whether the configured ADC transfer is an identity on every
    /// reachable discharge count (LSB = 1 count, counts never exceed the
    /// full scale) — true at the paper design point, where 10 rows per
    /// activation x 3 pulses fit the 31-level 5-bit ADC. A pure function
    /// of `params`, computed once at `program` time.
    pub(crate) fn adc_is_identity(&self) -> bool {
        self.adc_identity
    }

    /// Executes a block of `n` activation vectors when the ADC transfer
    /// is an identity ([`RomMvm::adc_is_identity`]): the bit-serial
    /// datapath then reconstructs the exact integer product (the repo's
    /// core equivalence claim, property-tested in both directions), so
    /// the accumulators come from an integer matmul over the stored
    /// weight codes — dispatched through the selected kernel tier
    /// ([`RomMvm::kernel`]) — while the event counters come from the
    /// shared [`kernels::fold_event_counters`]. Bit-identical to a
    /// per-vector [`RomMvm::mvm_fast`] loop in values *and* statistics
    /// on every tier.
    pub(crate) fn mvm_batch_exact(
        &self,
        acts: &[i32],
        n: usize,
        out: &mut [i64],
        stats: &mut MvmStats,
        scratch: &mut crate::backend::MvmScratch,
    ) {
        self.validate_act_codes(acts);
        assert!(
            !self.codes.is_empty() || self.outs == 0 || self.ins == 0,
            "exact kernel requires the stored code matrix"
        );
        // Exact values: the dispatched integer matmul, in whichever
        // layout the shape crossover prefers. A row-major caller still
        // reaches the transposed kernels through a one-time repack of
        // the block (cheap next to the O(outs * ins * n) matmul for the
        // narrow shapes the crossover selects).
        scratch.counters.clear();
        scratch.counters.resize(n, [0u64; 3]);
        match self.batch_layout_for(n) {
            kernels::MatmulLayout::RowMajor => {
                kernels::matmul_exact(
                    self.kernel,
                    &self.exact_codes(),
                    acts,
                    n,
                    out,
                    &mut scratch.acts16,
                );
                kernels::fold_event_counters(
                    self.kernel,
                    acts,
                    self.ins,
                    n,
                    &self.fold_params(),
                    &mut scratch.counters,
                    &mut scratch.fold_bitmaps,
                );
            }
            kernels::MatmulLayout::Transposed => {
                // Repack once, then run the whole panel pipeline —
                // matmul *and* fold — so the repack is the only layout
                // cost a row-major caller pays. The repack itself is
                // tier-dispatched (hardware gathers on the SIMD tiers).
                // The panel is grown but never re-zeroed: padding lanes
                // carry stale codes from earlier calls, which the panel
                // kernels tolerate (lane arithmetic is independent and
                // padded lanes are never extracted; stale codes obey
                // the same magnitude bound as live ones).
                let n_pad = kernels::transposed_pad(n);
                let need = self.ins * n_pad;
                if scratch.acts_t.len() < need {
                    scratch.acts_t.resize(need, 0);
                }
                kernels::repack_transposed(
                    self.kernel,
                    acts,
                    self.ins,
                    n,
                    n_pad,
                    &mut scratch.acts_t,
                );
                kernels::matmul_exact_t(
                    self.kernel,
                    &self.exact_codes(),
                    &scratch.acts_t,
                    n,
                    n_pad,
                    out,
                );
                kernels::fold_event_counters_t(
                    self.kernel,
                    &scratch.acts_t,
                    self.ins,
                    n,
                    n_pad,
                    &self.fold_params(),
                    &mut scratch.counters,
                );
            }
        }
        self.merge_counter_stats(&scratch.counters, stats);
    }

    /// The stored codes in every packing the matmul tiers understand.
    fn exact_codes(&self) -> kernels::ExactCodes<'_> {
        kernels::ExactCodes {
            codes: &self.codes,
            codes16: self.codes16.data(),
            ins16: self.codes16.stride(),
            outs: self.outs,
            ins: self.ins,
        }
    }

    /// The activation layout the batched kernels prefer for a block of
    /// `n` vectors (see [`kernels::choose_layout`]); the noisy per-vector
    /// reference path has no batched kernel and always stages row-major.
    ///
    /// The scalar tier also stays row-major: the panel layout only pays
    /// off when lanes vectorize, and letting the reference tier take its
    /// slower transposed walk would quietly inflate every measured
    /// speedup. Scalar's transposed entries remain first-class parity
    /// oracles — the remainder suites drive them with explicit panels.
    pub(crate) fn batch_layout_for(&self, n: usize) -> kernels::MatmulLayout {
        if !self.fast_path_active() || self.kernel == kernels::KernelKind::Scalar {
            return kernels::MatmulLayout::RowMajor;
        }
        if self.adc_is_identity() {
            kernels::choose_layout(self.outs, self.ins, n, !self.codes16.is_empty())
        } else if n >= 4 {
            // The quantizing popcount stream packs pulse bit-planes
            // across vectors; the panel layout feeds that packing with
            // contiguous reads, so it wins whenever lanes fill at all.
            kernels::MatmulLayout::Transposed
        } else {
            kernels::MatmulLayout::RowMajor
        }
    }

    /// [`RomMvm::mvm_batch_exact`] over a lane-major `[ins x n_pad]`
    /// activation panel (`acts_t[i * n_pad + v]`; padding lanes are
    /// never read back but must stay within the activation code range,
    /// e.g. zero or stale codes from an earlier staging pass) —
    /// the layout [`RomMvm::batch_layout_for`] asks callers to stage
    /// when the crossover picks the transposed kernels, eliminating the
    /// quantize-then-repack double pass. Bit-identical to the row-major
    /// entry on every tier.
    pub(crate) fn mvm_batch_exact_t(
        &self,
        acts_t: &[i32],
        n: usize,
        n_pad: usize,
        out: &mut [i64],
        stats: &mut MvmStats,
        scratch: &mut crate::backend::MvmScratch,
    ) {
        self.validate_act_codes(acts_t);
        assert!(
            !self.codes.is_empty() || self.outs == 0 || self.ins == 0,
            "exact kernel requires the stored code matrix"
        );
        assert!(
            n_pad >= n && n_pad.is_multiple_of(16),
            "panel padding mismatch"
        );
        assert!(acts_t.len() >= self.ins * n_pad, "panel shape mismatch");
        kernels::matmul_exact_t(self.kernel, &self.exact_codes(), acts_t, n, n_pad, out);
        scratch.counters.clear();
        scratch.counters.resize(n, [0u64; 3]);
        kernels::fold_event_counters_t(
            self.kernel,
            acts_t,
            self.ins,
            n,
            n_pad,
            &self.fold_params(),
            &mut scratch.counters,
        );
        self.merge_counter_stats(&scratch.counters, stats);
    }

    /// Derives per-vector statistics from raw event counters (through
    /// [`RomMvm::finish_stats`]) and merges them **in vector order** —
    /// the exact fold a per-vector `mvm` loop performs.
    fn merge_counter_stats(&self, counters: &[[u64; 3]], stats: &mut MvmStats) {
        let finisher = &self.finisher;
        for c in counters {
            let mut s = MvmStats {
                analog_evaluations: c[0],
                adc_conversions: c[1],
                wl_pulses: c[2],
                ..MvmStats::default()
            };
            finisher.finish(&mut s);
            stats.merge(&s);
        }
    }

    /// Executes a block of `n` activation vectors on the popcount fast
    /// path with **one traversal of the popcount tables per block**: the
    /// pulse bit-planes of every vector are packed once per (row-tile,
    /// chunk) step into `scratch`, and the per-column weight masks are
    /// then streamed a single time, each mask `AND`+`popcount`-ed against
    /// all vectors while it is hot. Bit-identical to a per-vector
    /// [`RomMvm::mvm_fast`] loop in values *and* statistics: the integer
    /// accumulation is exact under any traversal order, the same ADC
    /// transfer is applied per group evaluation, and the per-vector event
    /// counters are folded through [`RomMvm::finish_stats`] and merged in
    /// vector order, exactly as [`crate::backend::MvmBackend::mvm_tile`]
    /// folds a per-vector walk.
    ///
    /// At the paper design point the ADC resolves single discharge events
    /// (`full_scale <= levels`), making the transfer an identity on
    /// reachable counts; the kernel then skips the per-group `digitize`
    /// calls entirely, which is where most of the batched speedup on the
    /// default configuration comes from.
    ///
    /// The `AND`+popcount inner loop and the counter fold dispatch
    /// through the selected kernel tier ([`RomMvm::kernel`]); every tier
    /// computes identical integers, so tier choice is invisible here.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths mismatch or the fast path is
    /// unavailable (`rows_per_activation > 64`).
    pub(crate) fn mvm_batch_fast(
        &self,
        acts: &[i32],
        n: usize,
        out: &mut [i64],
        stats: &mut MvmStats,
        scratch: &mut crate::backend::MvmScratch,
    ) {
        self.validate_act_codes(acts);
        let p = &self.params;
        let popcount_tiles = self
            .popcount_tiles
            .as_ref()
            .expect("fast path requires popcount tables");
        let rpa = p.rows_per_activation;
        let n_groups = p.rows.div_ceil(rpa);
        let n_planes = p.chunk_bits as usize;
        let n_chunks = p.act_bits.div_ceil(p.chunk_bits) as usize;
        let chunk_mask = (1u32 << p.chunk_bits) - 1;
        let adc = p.analog_config().adc;
        // Identity transfers normally dispatch to `mvm_batch_exact`; the
        // branch is kept so this kernel stands alone as well.
        let adc_identity = self.adc_is_identity();
        out.fill(0);
        // Event counters: the one shared fold over the pulse activity
        // (pure function of the pulses, independent of the mask stream).
        scratch.counters.clear();
        scratch.counters.resize(n, [0u64; 3]);
        kernels::fold_event_counters(
            self.kernel,
            acts,
            self.ins,
            n,
            &self.fold_params(),
            &mut scratch.counters,
            &mut scratch.fold_bitmaps,
        );
        // Values: per (row-tile, chunk), stage the block's pulse planes
        // **plane-major** (`[group][plane][vector]`, vectors padded to
        // the tier's popcount lane width) so each staged plane is
        // contiguous across the block, then stream the tile-major
        // lane-packed nonzero weight masks once per block — one
        // L1-resident weight tile against all staged activation
        // bit-planes.
        let n_pad = n.next_multiple_of(self.kernel.plane_pad());
        let group_stride = n_planes * n_pad;
        scratch.plane_masks.clear();
        scratch.plane_masks.resize(n_groups * group_stride, 0);
        scratch.counts.clear();
        scratch.counts.resize(n_pad, 0);
        for (rt, tile_row) in popcount_tiles.iter().enumerate() {
            let row_lo = rt * p.rows;
            let row_hi = ((rt + 1) * p.rows).min(self.ins);
            for c_idx in 0..n_chunks {
                let shift = c_idx as u8 * p.chunk_bits;
                let act_weight = 1i64 << shift;
                scratch.plane_masks.fill(0);
                let mut any_pulse = false;
                for v in 0..n {
                    let av = &acts[v * self.ins + row_lo..v * self.ins + row_hi];
                    for (r, &a) in av.iter().enumerate() {
                        let pulse = ((a as u32) >> shift) & chunk_mask;
                        if pulse == 0 {
                            continue;
                        }
                        any_pulse = true;
                        let bit = 1u64 << (r % rpa);
                        let base = (r / rpa) * group_stride + v;
                        for b in 0..n_planes {
                            if (pulse >> b) & 1 == 1 {
                                scratch.plane_masks[base + b * n_pad] |= bit;
                            }
                        }
                    }
                }
                if !any_pulse {
                    continue;
                }
                self.stream_tile_masks(
                    rt,
                    tile_row,
                    n,
                    n_pad,
                    act_weight,
                    adc_identity,
                    adc,
                    &scratch.plane_masks,
                    &mut scratch.counts,
                    out,
                );
            }
        }
        let counters = std::mem::take(&mut scratch.counters);
        self.merge_counter_stats(&counters, stats);
        scratch.counters = counters;
    }

    /// Streams one row tile's lane-packed nonzero weight masks against
    /// the staged pulse bit-planes — the shared inner loop of both fast
    /// batch entries (`AND`+popcount via [`kernels::group_counts`], then
    /// ADC transfer and signed-plane accumulation).
    #[allow(clippy::too_many_arguments)]
    fn stream_tile_masks(
        &self,
        rt: usize,
        tile_row: &[PopcountTile],
        n: usize,
        n_pad: usize,
        act_weight: i64,
        adc_identity: bool,
        adc: AdcModel,
        plane_masks: &[u64],
        counts: &mut [u64],
        out: &mut [i64],
    ) {
        let p = &self.params;
        let wb = p.weight_bits as usize;
        let n_planes = p.chunk_bits as usize;
        let n_groups = p.rows.div_ceil(p.rows_per_activation);
        let group_stride = n_planes * n_pad;
        for (ct, tile) in tile_row.iter().enumerate() {
            let tile_faults = self.adc_faults.as_ref().map(|af| &af[rt][ct]);
            for g in 0..n_groups {
                let planes = &plane_masks[g * group_stride..(g + 1) * group_stride];
                let span = tile.nz_offsets[g] as usize..tile.nz_offsets[g + 1] as usize;
                for &(meta, mask) in &tile.nz[span] {
                    let o = (meta >> 8) as usize;
                    let out_idx = ct * self.outs_per_array + o;
                    let j = (meta & 0xff) as usize;
                    let col_fault = tile_faults.and_then(|t| t[o * wb + j]);
                    let w_plane = act_weight * signed_plane_weight(j, p.weight_bits);
                    kernels::group_counts(self.kernel, mask, planes, n_planes, n_pad, counts);
                    for (v, &count) in counts[..n].iter().enumerate() {
                        if count == 0 {
                            continue;
                        }
                        // Both fault transforms fix zero, so the
                        // silent-column skip above stays exact.
                        let sensed = match col_fault {
                            Some(f) => f.apply_count(count),
                            None => count,
                        };
                        let readout = if adc_identity {
                            sensed as i64
                        } else {
                            adc.digitize(sensed as f32)
                        };
                        out[v * self.outs + out_idx] += w_plane * readout;
                    }
                }
            }
        }
    }

    /// [`RomMvm::mvm_batch_fast`] over a lane-major `[ins x n_pad_t]`
    /// activation panel. The pulse bit-plane packing becomes
    /// `rows_per_activation`-aware: the wordline bit and group base are
    /// hoisted per activation row (one `1 << (r % rpa)` per row instead
    /// of per `(v, row)` pair) and each panel row is read as one
    /// contiguous lane run, so the pack is a linear sweep of the panel.
    /// Values, ADC transfer and statistics are bit-identical to the
    /// row-major entry (same integers in a different traversal order).
    pub(crate) fn mvm_batch_fast_t(
        &self,
        acts_t: &[i32],
        n: usize,
        n_pad_t: usize,
        out: &mut [i64],
        stats: &mut MvmStats,
        scratch: &mut crate::backend::MvmScratch,
    ) {
        self.validate_act_codes(acts_t);
        let p = &self.params;
        let popcount_tiles = self
            .popcount_tiles
            .as_ref()
            .expect("fast path requires popcount tables");
        assert!(
            n_pad_t >= n && n_pad_t.is_multiple_of(16),
            "panel padding mismatch"
        );
        assert!(acts_t.len() >= self.ins * n_pad_t, "panel shape mismatch");
        let rpa = p.rows_per_activation;
        let n_groups = p.rows.div_ceil(rpa);
        let n_planes = p.chunk_bits as usize;
        let n_chunks = p.act_bits.div_ceil(p.chunk_bits) as usize;
        let chunk_mask = (1u32 << p.chunk_bits) - 1;
        let adc = p.analog_config().adc;
        let adc_identity = self.adc_is_identity();
        out.fill(0);
        scratch.counters.clear();
        scratch.counters.resize(n, [0u64; 3]);
        kernels::fold_event_counters_t(
            self.kernel,
            acts_t,
            self.ins,
            n,
            n_pad_t,
            &self.fold_params(),
            &mut scratch.counters,
        );
        let n_pad = n.next_multiple_of(self.kernel.plane_pad());
        let group_stride = n_planes * n_pad;
        scratch.plane_masks.clear();
        scratch.plane_masks.resize(n_groups * group_stride, 0);
        scratch.counts.clear();
        scratch.counts.resize(n_pad, 0);
        for (rt, tile_row) in popcount_tiles.iter().enumerate() {
            let row_lo = rt * p.rows;
            let row_hi = ((rt + 1) * p.rows).min(self.ins);
            for c_idx in 0..n_chunks {
                let shift = c_idx as u8 * p.chunk_bits;
                let act_weight = 1i64 << shift;
                scratch.plane_masks.fill(0);
                let mut any_pulse = false;
                for r in row_lo..row_hi {
                    let local = r - row_lo;
                    let bit = 1u64 << (local % rpa);
                    let base = (local / rpa) * group_stride;
                    let lane = &acts_t[r * n_pad_t..r * n_pad_t + n];
                    for (v, &a) in lane.iter().enumerate() {
                        let pulse = ((a as u32) >> shift) & chunk_mask;
                        if pulse == 0 {
                            continue;
                        }
                        any_pulse = true;
                        for b in 0..n_planes {
                            if (pulse >> b) & 1 == 1 {
                                scratch.plane_masks[base + b * n_pad + v] |= bit;
                            }
                        }
                    }
                }
                if !any_pulse {
                    continue;
                }
                self.stream_tile_masks(
                    rt,
                    tile_row,
                    n,
                    n_pad,
                    act_weight,
                    adc_identity,
                    adc,
                    &scratch.plane_masks,
                    &mut scratch.counts,
                    out,
                );
            }
        }
        let counters = std::mem::take(&mut scratch.counters);
        self.merge_counter_stats(&counters, stats);
        scratch.counters = counters;
    }

    /// Executes `y = W x` through the cell-accurate analog reference path:
    /// every group evaluation walks the subarray cells, injects bit-line
    /// noise when configured, and digitizes through the column ADC model.
    /// This is the pre-engine implementation, kept as the golden reference
    /// for the fast path and as the only path that models noise.
    ///
    /// # Panics
    ///
    /// Panics if `acts.len() != ins` or any code is out of range.
    pub fn mvm_analog<R: Rng + ?Sized>(&self, acts: &[i32], rng: &mut R) -> (Vec<i64>, MvmStats) {
        assert_eq!(acts.len(), self.ins, "activation length mismatch");
        let p = &self.params;
        let chunks = unsigned_chunks(acts, p.act_bits, p.chunk_bits);
        let wb = p.weight_bits as usize;
        let mut out = vec![0i64; self.outs];
        let mut stats = MvmStats::default();
        for (rt, tile_row) in self.tiles.iter().enumerate() {
            let row_lo = rt * p.rows;
            let row_hi = ((rt + 1) * p.rows).min(self.ins);
            for (c_idx, chunk) in chunks.iter().enumerate() {
                // Build the pulse vector for this row tile and digit.
                let mut pulses = vec![0u8; p.rows];
                pulses[..row_hi - row_lo].copy_from_slice(&chunk[row_lo..row_hi]);
                let total_pulses: u64 = pulses.iter().map(|&v| v as u64).sum();
                if total_pulses == 0 {
                    continue;
                }
                let act_weight = 1i64 << (c_idx as u8 * p.chunk_bits);
                for (ct, array) in tile_row.iter().enumerate() {
                    let (counts, evals) = array.evaluate(&pulses, rng);
                    stats.analog_evaluations += evals as u64;
                    stats.adc_conversions += (evals * p.cols) as u64;
                    stats.wl_pulses += total_pulses;
                    for o in 0..self.outs_per_array {
                        let out_idx = ct * self.outs_per_array + o;
                        if out_idx >= self.outs {
                            break;
                        }
                        for j in 0..wb {
                            let count = counts[o * wb + j];
                            out[out_idx] +=
                                act_weight * signed_plane_weight(j, p.weight_bits) * count;
                        }
                    }
                }
            }
        }
        self.finish_stats(&mut stats);
        (out, stats)
    }

    /// Fills in the derived energy and latency fields from the event
    /// counters, identically for both execution paths.
    ///
    /// Energy: one `e_adc` per column conversion, `e_wl` per actual pulse,
    /// per-evaluation bit-line precharge, and shift-&-add/control overhead
    /// per active subarray. Latency: one analog evaluation takes
    /// `t_inference / (chunks x groups)` — a full 8-bit MAC over `rows`
    /// inputs takes `t_inference_ns`; column tiles run in parallel on
    /// distinct subarrays, so divide by the column-tile count.
    fn finish_stats(&self, stats: &mut MvmStats) {
        self.finisher.finish(stats);
    }

    /// Hoists the constant subexpressions of [`RomMvm::finish_stats`] —
    /// the subarray walk, the `div_ceil` shape math and the `t_eval`
    /// division — so the per-vector fold pays only the genuinely
    /// per-vector arithmetic. Every precomputed value is the exact float
    /// the unhoisted expression produced, and [`StatsFinisher::finish`]
    /// applies the remaining operations in the original order, so the
    /// derived fields stay bit-identical to a per-vector walk. Built
    /// once at `program` time and cached as [`RomMvm::finisher`] (every
    /// input is fixed after programming).
    fn stats_finisher(&self) -> StatsFinisher {
        let p = &self.params;
        let groups_per_tile = p.rows.div_ceil(p.rows_per_activation) as f64;
        let chunk_count = p.act_bits.div_ceil(p.chunk_bits) as f64;
        StatsFinisher {
            e_adc_pj: p.e_adc_pj,
            e_wl_pulse_pj: p.e_wl_pulse_pj,
            cols_f: p.cols as f64,
            e_precharge_pj: p.e_precharge_pj,
            shift_add_term: self.subarrays_used() as f64 * p.e_shift_add_pj,
            t_eval: p.t_inference_ns / (chunk_count * groups_per_tile),
            tile_div: self.tiles.first().map_or(1.0, |r| r.len() as f64).max(1.0),
        }
    }
}

/// Precomputed constants of the stats derivation (see
/// [`RomMvm::finish_stats`]); built once at `program` time, applied per
/// vector.
#[derive(Clone, Copy, Default)]
struct StatsFinisher {
    e_adc_pj: f64,
    e_wl_pulse_pj: f64,
    cols_f: f64,
    e_precharge_pj: f64,
    /// `subarrays_used() as f64 * e_shift_add_pj`, constant per engine.
    shift_add_term: f64,
    /// `t_inference_ns / (chunks x groups)`, constant per engine.
    t_eval: f64,
    /// Column-tile parallelism divisor, constant per engine.
    tile_div: f64,
}

impl StatsFinisher {
    /// Fills in the derived energy and latency fields from the event
    /// counters, identically for both execution paths.
    ///
    /// Energy: one `e_adc` per column conversion, `e_wl` per actual
    /// pulse, per-evaluation bit-line precharge, and shift-&-add/control
    /// overhead per active subarray. Latency: one analog evaluation takes
    /// `t_inference / (chunks x groups)` — a full 8-bit MAC over `rows`
    /// inputs takes `t_inference_ns`; column tiles run in parallel on
    /// distinct subarrays, so divide by the column-tile count.
    fn finish(&self, stats: &mut MvmStats) {
        stats.energy_pj = stats.adc_conversions as f64 * self.e_adc_pj
            + stats.wl_pulses as f64 * self.e_wl_pulse_pj
            + stats.analog_evaluations as f64 * self.cols_f * self.e_precharge_pj
            + self.shift_add_term;
        stats.latency_ns = stats.analog_evaluations as f64 * self.t_eval / self.tile_div;
    }
}

/// Reference integer MVM for cross-checking [`RomMvm`]: `y = W x` with the
/// same `(outs, ins)` layout.
pub fn reference_mvm(codes: &[i32], outs: usize, ins: usize, acts: &[i32]) -> Vec<i64> {
    let mut y = vec![0i64; outs];
    matmul_into(codes, outs, ins, acts, 1, &mut y);
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table1_spec_matches_paper() {
        let spec = MacroParams::rom_paper().spec();
        // Table I targets.
        assert!(
            (spec.macro_size_mb - 1.2).abs() < 0.1,
            "size {}",
            spec.macro_size_mb
        );
        assert!(
            (spec.macro_area_mm2 - 0.24).abs() < 0.01,
            "area {}",
            spec.macro_area_mm2
        );
        assert!(
            (spec.density_mb_per_mm2 - 5.0).abs() < 0.3,
            "density {}",
            spec.density_mb_per_mm2
        );
        assert!((spec.cell_area_um2 - 0.014).abs() < 1e-9);
        assert_eq!(spec.operation_number, 256);
        assert!((spec.inference_time_ns - 8.9).abs() < 1e-9);
        assert!(
            (spec.throughput_gops - 28.8).abs() < 0.2,
            "gops {}",
            spec.throughput_gops
        );
        assert!(
            (spec.area_efficiency_gops_mm2 - 119.4).abs() < 3.0,
            "ae {}",
            spec.area_efficiency_gops_mm2
        );
        assert!(
            (spec.energy_efficiency_tops_w - 11.5).abs() < 0.2,
            "ee {}",
            spec.energy_efficiency_tops_w
        );
        assert_eq!(spec.standby_power_w, 0.0);
    }

    #[test]
    fn edram_sits_between_sram_and_rom() {
        let rom = MacroParams::rom_paper().spec();
        let sram = MacroParams::sram_paper().spec();
        let edram = MacroParams::edram_paper().spec();
        assert!(edram.density_mb_per_mm2 > sram.density_mb_per_mm2);
        assert!(edram.density_mb_per_mm2 < rom.density_mb_per_mm2);
        // Volatile and refresh-hungry.
        assert!(edram.standby_power_w > sram.standby_power_w);
    }

    #[test]
    fn rom_vs_sram_density_ratio() {
        let rom = MacroParams::rom_paper().spec();
        let sram = MacroParams::sram_paper().spec();
        let ratio = rom.density_mb_per_mm2 / sram.density_mb_per_mm2;
        // Paper: ROM-CiM macro density 19-25.6x the SRAM-CiM counterpart.
        assert!((15.0..=30.0).contains(&ratio), "density ratio {ratio}");
        assert!(sram.standby_power_w > 0.0);
    }

    #[test]
    fn mvm_ideal_adc_is_exact() {
        let mut params = MacroParams::rom_paper();
        params.adc_bits = 16; // ideal
        params.subarrays = 4;
        let mut rng = StdRng::seed_from_u64(1);
        let (outs, ins) = (5, 200);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 37) % 255) as i32 - 127)
            .collect();
        let acts: Vec<i32> = (0..ins).map(|i| ((i * 13) % 256) as i32).collect();
        let engine = RomMvm::program(params, &codes, outs, ins);
        let (y, stats) = engine.mvm(&acts, &mut rng);
        assert_eq!(y, reference_mvm(&codes, outs, ins, &acts));
        assert!(stats.analog_evaluations > 0);
        assert!(stats.energy_pj > 0.0);
        assert!(stats.latency_ns > 0.0);
    }

    #[test]
    fn mvm_5bit_adc_paper_design_point_is_exact() {
        // 10 active rows x 3 pulses = 30 events fits the 31-level 5-bit
        // ADC, so the noiseless datapath is bit-exact — the macro-level
        // basis for the paper's "almost no accuracy loss".
        let params = MacroParams::rom_paper(); // 5-bit ADC, 10 rows/activation
        let mut rng = StdRng::seed_from_u64(2);
        let (outs, ins) = (4, 128);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 7) % 200) as i32 - 100)
            .collect();
        let acts: Vec<i32> = (0..ins).map(|i| ((i * 11) % 128) as i32).collect();
        let engine = RomMvm::program(params, &codes, outs, ins);
        let (y, _) = engine.mvm(&acts, &mut rng);
        assert_eq!(y, reference_mvm(&codes, outs, ins, &acts));
    }

    #[test]
    fn mvm_overdriven_rows_has_bounded_error() {
        // Driving more simultaneous rows than the ADC can resolve trades
        // accuracy for parallelism (paper 4.3.1 trade-off): the result is
        // no longer exact but the error is bounded by the per-evaluation
        // quantization error times the bit significance weights.
        let mut params = MacroParams::rom_paper();
        params.rows_per_activation = 32; // full scale 96 >> 31 levels
        let mut rng = StdRng::seed_from_u64(5);
        let (outs, ins) = (4, 128);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 13) % 250) as i32 - 125)
            .collect();
        let acts: Vec<i32> = (0..ins).map(|i| ((i * 17) % 256) as i32).collect();
        let engine = RomMvm::program(params, &codes, outs, ins);
        let (y, _) = engine.mvm(&acts, &mut rng);
        let exact = reference_mvm(&codes, outs, ins, &acts);
        let per_eval = params.analog_config().adc.max_quantization_error() as f64;
        let groups = (128f64 / 32.0).ceil();
        let sum_act_w = (0..4).map(|c| (1u64 << (2 * c)) as f64).sum::<f64>();
        let sum_plane_w = (0..8).map(|j| (1u64 << j) as f64).sum::<f64>();
        let bound = groups * sum_act_w * sum_plane_w * per_eval;
        let mut any_err = false;
        for (a, b) in y.iter().zip(&exact) {
            assert!(((a - b).abs() as f64) <= bound, "{a} vs {b} bound {bound}");
            any_err |= a != b;
        }
        assert!(any_err, "overdriven readout should show quantization error");
    }

    #[test]
    fn tiling_covers_large_matrices() {
        let mut params = MacroParams::rom_paper();
        params.adc_bits = 16;
        let (outs, ins) = (70, 300); // forces 3 row tiles x 3 col tiles
        let codes = vec![1i32; outs * ins];
        let engine = RomMvm::program(params, &codes, outs, ins);
        assert_eq!(engine.subarrays_used(), 3 * 3);
        let acts = vec![1i32; ins];
        let mut rng = StdRng::seed_from_u64(3);
        let (y, _) = engine.mvm(&acts, &mut rng);
        assert!(y.iter().all(|&v| v == ins as i64));
    }

    #[test]
    fn rom_image_roundtrip_preserves_programming() {
        let mut params = MacroParams::rom_paper();
        params.adc_bits = 16;
        let (outs, ins) = (10, 64);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 29) % 255) as i32 - 127)
            .collect();
        let engine = RomMvm::program(params, &codes, outs, ins);
        let img = engine.rom_image();
        assert_eq!(img.len(), engine.subarrays_used());
        let back = crate::rom_image::RomImage::from_bytes(img.to_bytes()).unwrap();
        assert_eq!(img, back);
        // The image is mostly sparse: only strapped '1' cells.
        assert!(img.fill_ratio() > 0.0 && img.fill_ratio() < 0.8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_ideal_adc_matches_integer_matmul(
            outs in 1usize..7,
            ins in 1usize..260,
            seed in 0u64..10_000,
        ) {
            // The repo's core functional-equivalence claim: with an ideal
            // ADC and zero noise, the full bit-serial analog datapath
            // (bit-plane programming, unary pulse chunks, charge-share
            // counting, shift-&-add) is bit-exact against the plain
            // integer matmul, for any weight/input matrix — including
            // shapes that force row/column tiling.
            let mut params = MacroParams::rom_paper();
            params.adc_bits = 16; // ideal ADC
            let mut rng = StdRng::seed_from_u64(seed);
            let codes: Vec<i32> =
                (0..outs * ins).map(|_| rng.gen_range(-128i32..=127)).collect();
            let acts: Vec<i32> = (0..ins).map(|_| rng.gen_range(0i32..=255)).collect();
            let engine = RomMvm::program(params, &codes, outs, ins);
            prop_assert!(engine.fast_path_active());
            let (y, stats) = engine.mvm(&acts, &mut rng);
            prop_assert_eq!(&y, &reference_mvm(&codes, outs, ins, &acts));
            // The popcount fast path must be indistinguishable from the
            // cell-accurate analog reference path: same outputs, same
            // event counters, same derived energy/latency.
            let (y_analog, stats_analog) = engine.mvm_analog(&acts, &mut rng);
            prop_assert_eq!(y, y_analog);
            prop_assert_eq!(stats, stats_analog);
            // Sparsity accounting must stay consistent: evaluations only
            // happen when some pulse fired.
            if acts.iter().all(|&a| a == 0) {
                prop_assert_eq!(stats.analog_evaluations, 0);
            }
        }

        #[test]
        fn prop_batch_kernel_tiers_match_per_vector(
            outs in 1usize..9,
            ins in 1usize..300,
            n in 1usize..6,
            seed in 0u64..10_000,
        ) {
            // Kernel-tier parity: every available dispatch tier (scalar
            // and, where the host supports it, AVX2) must produce the
            // exact per-vector reference — values AND folded stats — on
            // both batch paths (identity-ADC exact matmul and the
            // quantizing popcount stream, toggled by `rpa`).
            let mut params = MacroParams::rom_paper();
            if seed % 2 == 1 {
                params.rows_per_activation = 32; // ADC actually quantizes
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let codes: Vec<i32> =
                (0..outs * ins).map(|_| rng.gen_range(-128i32..=127)).collect();
            let acts: Vec<i32> =
                (0..n * ins).map(|_| rng.gen_range(0i32..=255)).collect();
            let mut engine = RomMvm::program(params, &codes, outs, ins);
            let mut golden = vec![0i64; n * outs];
            let mut golden_stats = MvmStats::default();
            for v in 0..n {
                let (y, s) = engine.mvm(&acts[v * ins..(v + 1) * ins], &mut rng);
                golden[v * outs..(v + 1) * outs].copy_from_slice(&y);
                golden_stats.merge(&s);
            }
            let mut scratch = crate::backend::MvmScratch::new();
            for kind in crate::kernels::available_kinds() {
                engine.set_kernel(kind);
                let mut out = vec![0i64; n * outs];
                let mut stats = MvmStats::default();
                if engine.adc_is_identity() {
                    engine.mvm_batch_exact(&acts, n, &mut out, &mut stats, &mut scratch);
                } else {
                    engine.mvm_batch_fast(&acts, n, &mut out, &mut stats, &mut scratch);
                }
                prop_assert_eq!(&out, &golden, "values diverge on {}", kind.label());
                prop_assert_eq!(&stats, &golden_stats, "stats diverge on {}", kind.label());
            }
        }
    }

    #[test]
    fn fast_path_matches_analog_under_adc_quantization() {
        // Overdrive the rows so the 5-bit ADC actually quantizes: the two
        // paths must still agree bit-for-bit because they share the ADC
        // transfer function, not just the ideal arithmetic.
        let mut params = MacroParams::rom_paper();
        params.rows_per_activation = 32; // full scale 96 >> 31 levels
        let (outs, ins) = (6, 300); // multiple row and column tiles
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 41) % 255) as i32 - 127)
            .collect();
        let acts: Vec<i32> = (0..ins).map(|i| ((i * 23) % 256) as i32).collect();
        let engine = RomMvm::program(params, &codes, outs, ins);
        assert!(engine.fast_path_active());
        let mut rng = StdRng::seed_from_u64(11);
        let (y_fast, s_fast) = engine.mvm(&acts, &mut rng);
        let (y_analog, s_analog) = engine.mvm_analog(&acts, &mut rng);
        assert_eq!(y_fast, y_analog);
        assert_eq!(s_fast, s_analog);
    }

    #[test]
    fn set_fast_path_forces_reference_path_with_same_results() {
        let mut params = MacroParams::rom_paper();
        params.adc_bits = 16;
        let (outs, ins) = (4, 200);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 19) % 255) as i32 - 127)
            .collect();
        let acts: Vec<i32> = (0..ins).map(|i| ((i * 7) % 256) as i32).collect();
        let mut engine = RomMvm::program(params, &codes, outs, ins);
        let mut rng = StdRng::seed_from_u64(12);
        let (y_fast, _) = engine.mvm(&acts, &mut rng);
        engine.set_fast_path(false);
        assert!(!engine.fast_path_active());
        let (y_ref, _) = engine.mvm(&acts, &mut rng);
        assert_eq!(y_fast, y_ref);
        assert_eq!(y_ref, reference_mvm(&codes, outs, ins, &acts));
    }

    #[test]
    fn fast_path_unavailable_beyond_mask_width() {
        // rows_per_activation > 64 cannot pack a group into a u64 mask;
        // mvm must fall back to the analog path and stay correct.
        let mut params = MacroParams::rom_paper();
        params.adc_bits = 16;
        params.rows_per_activation = 100;
        let (outs, ins) = (3, 128);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 3) % 255) as i32 - 127)
            .collect();
        let acts: Vec<i32> = (0..ins).map(|i| ((i * 5) % 256) as i32).collect();
        let engine = RomMvm::program(params, &codes, outs, ins);
        assert!(!engine.fast_path_active());
        let mut rng = StdRng::seed_from_u64(13);
        let (y, _) = engine.mvm(&acts, &mut rng);
        assert_eq!(y, reference_mvm(&codes, outs, ins, &acts));
    }

    #[test]
    fn noise_disables_fast_path_and_consumes_rng() {
        let mut params = MacroParams::rom_paper();
        params.noise_sigma = 0.4;
        let engine = RomMvm::program(params, &vec![5i32; 64 * 4], 4, 64);
        assert!(!engine.fast_path_active());
        let acts = vec![100i32; 64];
        let mut rng_a = StdRng::seed_from_u64(14);
        let mut rng_b = StdRng::seed_from_u64(14);
        let (y_a, _) = engine.mvm(&acts, &mut rng_a);
        let (y_b, _) = engine.mvm(&acts, &mut rng_b);
        assert_eq!(y_a, y_b, "same seed, same noisy readout");
        // The RNG stream advanced (noise was drawn), so a second call on
        // the same generator differs with overwhelming probability.
        let (y_c, _) = engine.mvm(&acts, &mut rng_a);
        assert_ne!(y_a, y_c, "noise stream should advance the RNG");
    }

    #[test]
    fn faulted_program_with_empty_plan_is_identical() {
        use crate::faults::{FaultPlan, FaultSpec};
        let params = MacroParams::rom_paper();
        let (outs, ins) = (6, 300);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 37) % 255) as i32 - 127)
            .collect();
        let acts: Vec<i32> = (0..ins).map(|i| ((i * 13) % 256) as i32).collect();
        let clean = RomMvm::program(params, &codes, outs, ins);
        let plan = FaultPlan::new(FaultSpec::none());
        let faulted =
            RomMvm::program_with_faults(params, &codes, outs, ins, &FaultContext::bare(&plan));
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        let (ya, sa) = clean.mvm(&acts, &mut rng_a);
        let (yb, sb) = faulted.mvm(&acts, &mut rng_b);
        assert_eq!(ya, yb);
        assert_eq!(sa, sb);
        assert!(faulted.adc_is_identity());
        assert!(!faulted.codes.is_empty());
    }

    #[test]
    fn stuck_and_dead_faults_keep_paths_in_lockstep() {
        use crate::faults::{FaultPlan, FaultSpec};
        let params = MacroParams::rom_paper();
        let (outs, ins) = (6, 300); // multiple row and column tiles
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 41) % 255) as i32 - 127)
            .collect();
        let acts: Vec<i32> = (0..ins).map(|i| ((i * 23) % 256) as i32).collect();
        let spec = FaultSpec {
            stuck_rate: 0.02,
            dead_subarray_rate: 0.25,
            ..FaultSpec::uniform(42, 0.0)
        };
        let plan = FaultPlan::new(spec);
        let engine =
            RomMvm::program_with_faults(params, &codes, outs, ins, &FaultContext::bare(&plan));
        let clean = RomMvm::program(params, &codes, outs, ins);
        let mut rng = StdRng::seed_from_u64(2);
        let (y_fault, s_fault) = engine.mvm(&acts, &mut rng);
        let (y_clean, s_clean) = clean.mvm(&acts, &mut rng);
        assert_ne!(y_fault, y_clean, "faults must be observable");
        assert_eq!(s_fault, s_clean, "code faults never change the stats");
        // Fast path and cell-accurate analog reference stay bit-identical
        // under faults.
        let (y_analog, s_analog) = engine.mvm_analog(&acts, &mut rng);
        assert_eq!(y_fault, y_analog);
        assert_eq!(s_fault, s_analog);
        // Determinism: reprogramming under the same plan reproduces the
        // exact faulty engine.
        let twin =
            RomMvm::program_with_faults(params, &codes, outs, ins, &FaultContext::bare(&plan));
        assert_eq!(twin.mvm(&acts, &mut rng).0, y_fault);
    }

    #[test]
    fn adc_faults_break_identity_and_keep_paths_in_lockstep() {
        use crate::faults::{FaultPlan, FaultSpec};
        let params = MacroParams::rom_paper();
        let (outs, ins) = (5, 200);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 19) % 255) as i32 - 127)
            .collect();
        let acts: Vec<i32> = (0..ins).map(|i| ((i * 7) % 256) as i32).collect();
        let spec = FaultSpec {
            adc_fault_rate: 0.5,
            ..FaultSpec::uniform(7, 0.0)
        };
        let plan = FaultPlan::new(spec);
        let engine =
            RomMvm::program_with_faults(params, &codes, outs, ins, &FaultContext::bare(&plan));
        assert!(
            !engine.adc_is_identity(),
            "an ADC fault must break the identity-transfer shortcut"
        );
        assert!(engine.codes.is_empty(), "exact-matmul cache dropped");
        let clean = RomMvm::program(params, &codes, outs, ins);
        let mut rng = StdRng::seed_from_u64(3);
        let (y_fault, s_fault) = engine.mvm(&acts, &mut rng);
        let (y_clean, s_clean) = clean.mvm(&acts, &mut rng);
        assert_ne!(y_fault, y_clean, "a 50% ADC fault rate must corrupt");
        assert_eq!(s_fault, s_clean, "ADC faults never change the stats");
        let (y_analog, s_analog) = engine.mvm_analog(&acts, &mut rng);
        assert_eq!(y_fault, y_analog);
        assert_eq!(s_fault, s_analog);
    }

    #[test]
    fn link_slowdown_scales_latency_only() {
        use crate::faults::{FaultPlan, FaultSpec};
        let params = MacroParams::rom_paper();
        let (outs, ins) = (4, 128);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 3) % 255) as i32 - 127)
            .collect();
        let acts: Vec<i32> = (0..ins).map(|i| ((i * 5) % 256) as i32).collect();
        let plan = FaultPlan::new(FaultSpec::none());
        let ctx = FaultContext {
            plan: &plan,
            phys_ids: &[],
            link_slowdown: 4.0,
        };
        let slow = RomMvm::program_with_faults(params, &codes, outs, ins, &ctx);
        let clean = RomMvm::program(params, &codes, outs, ins);
        let mut rng = StdRng::seed_from_u64(4);
        let (y_slow, s_slow) = slow.mvm(&acts, &mut rng);
        let (y_clean, s_clean) = clean.mvm(&acts, &mut rng);
        assert_eq!(y_slow, y_clean, "link faults never change values");
        assert_eq!(s_slow.energy_pj, s_clean.energy_pj);
        assert_eq!(s_slow.latency_ns, s_clean.latency_ns * 4.0);
    }

    #[test]
    fn zero_activations_cost_nothing() {
        let mut params = MacroParams::rom_paper();
        params.adc_bits = 16;
        let engine = RomMvm::program(params, &vec![3i32; 64 * 10], 10, 64);
        let mut rng = StdRng::seed_from_u64(4);
        let (y, stats) = engine.mvm(&vec![0i32; 64], &mut rng);
        assert!(y.iter().all(|&v| v == 0));
        assert_eq!(stats.analog_evaluations, 0);
        assert_eq!(stats.wl_pulses, 0);
    }
}
