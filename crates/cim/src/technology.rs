//! Process-technology scaling data behind Fig. 1(a).
//!
//! The paper motivates ROM-CiM by observing that SRAM density grows with
//! technology scaling but tape-out cost soars even faster, so "buy density
//! with a smaller node" is uneconomical. This module carries a table of
//! published-ballpark density and normalized mask-set cost per node, plus
//! the ROM-CiM point that sits far above the SRAM scaling curve at 28 nm.

/// One technology node's SRAM density and tape-out cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechNode {
    /// Feature size in nanometres.
    pub node_nm: u32,
    /// Typical high-density 6T SRAM macro density in Mb/mm².
    pub sram_density_mb_mm2: f64,
    /// Mask-set/tape-out cost normalized to the 130 nm node.
    pub tapeout_cost_norm: f64,
}

/// Published-ballpark scaling table (ITRS/industry figures; the trend, not
/// the absolute values, is what Fig. 1(a) uses).
pub const TECH_NODES: &[TechNode] = &[
    TechNode {
        node_nm: 130,
        sram_density_mb_mm2: 0.16,
        tapeout_cost_norm: 1.0,
    },
    TechNode {
        node_nm: 90,
        sram_density_mb_mm2: 0.33,
        tapeout_cost_norm: 1.8,
    },
    TechNode {
        node_nm: 65,
        sram_density_mb_mm2: 0.62,
        tapeout_cost_norm: 3.3,
    },
    TechNode {
        node_nm: 45,
        sram_density_mb_mm2: 1.20,
        tapeout_cost_norm: 6.0,
    },
    TechNode {
        node_nm: 40,
        sram_density_mb_mm2: 1.45,
        tapeout_cost_norm: 7.5,
    },
    TechNode {
        node_nm: 28,
        sram_density_mb_mm2: 2.60,
        tapeout_cost_norm: 12.0,
    },
    TechNode {
        node_nm: 20,
        sram_density_mb_mm2: 3.70,
        tapeout_cost_norm: 25.0,
    },
    TechNode {
        node_nm: 16,
        sram_density_mb_mm2: 5.10,
        tapeout_cost_norm: 45.0,
    },
    TechNode {
        node_nm: 10,
        sram_density_mb_mm2: 8.60,
        tapeout_cost_norm: 90.0,
    },
    TechNode {
        node_nm: 7,
        sram_density_mb_mm2: 12.50,
        tapeout_cost_norm: 180.0,
    },
    TechNode {
        node_nm: 5,
        sram_density_mb_mm2: 18.60,
        tapeout_cost_norm: 400.0,
    },
];

/// The ROM-CiM design point of this work: 5 Mb/mm² of *compute-capable*
/// memory at the cheap 28 nm node (Table I).
pub const ROM_CIM_28NM_DENSITY_MB_MM2: f64 = 5.0;

/// Looks up a node by feature size.
pub fn node(node_nm: u32) -> Option<&'static TechNode> {
    TECH_NODES.iter().find(|n| n.node_nm == node_nm)
}

/// The smallest node whose plain-SRAM density reaches `density` Mb/mm²,
/// i.e. the node a pure-SRAM design would have to pay for to match ROM-CiM.
pub fn node_matching_density(density: f64) -> Option<&'static TechNode> {
    TECH_NODES
        .iter()
        .filter(|n| n.sram_density_mb_mm2 >= density)
        .max_by_key(|n| n.node_nm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_monotonic() {
        for w in TECH_NODES.windows(2) {
            assert!(w[0].node_nm > w[1].node_nm, "nodes must shrink");
            assert!(
                w[0].sram_density_mb_mm2 < w[1].sram_density_mb_mm2,
                "density must grow as node shrinks"
            );
            assert!(
                w[0].tapeout_cost_norm < w[1].tapeout_cost_norm,
                "cost must grow as node shrinks"
            );
        }
    }

    #[test]
    fn rom_cim_beats_28nm_sram_density() {
        let n28 = node(28).unwrap();
        assert!(ROM_CIM_28NM_DENSITY_MB_MM2 / n28.sram_density_mb_mm2 > 1.9);
    }

    #[test]
    fn matching_density_needs_advanced_node() {
        // Reaching ROM-CiM's 5 Mb/mm² with plain SRAM requires ~16 nm,
        // which costs >3x the 28 nm tape-out. This is Fig. 1(a)'s argument.
        let m = node_matching_density(ROM_CIM_28NM_DENSITY_MB_MM2).unwrap();
        assert!(m.node_nm <= 16);
        let n28 = node(28).unwrap();
        assert!(m.tapeout_cost_norm / n28.tapeout_cost_norm > 3.0);
    }

    #[test]
    fn lookup_missing_node() {
        assert!(node(3).is_none());
    }
}
