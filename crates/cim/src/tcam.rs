//! SRAM-TCAM distance calculator for the ROSL option (Fig. 6a).
//!
//! Option I replaces the trainable classifier with an in-memory distance
//! comparison: class prototypes are stored in a ternary CAM, query
//! features are binarized, and the match line analogically counts
//! mismatching bits (a Hamming distance), selecting the nearest
//! prototype. This module provides a behavioural model of that macro —
//! binarization, prototype storage with don't-care support, match-line
//! Hamming evaluation with optional analog noise, and an area/energy
//! model consistent with the rest of the CiM stack.

use rand::Rng;

use yoloc_tensor::Tensor;

/// A ternary stored symbol: match 0, match 1, or always-match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trit {
    /// Matches a 0 query bit.
    Zero,
    /// Matches a 1 query bit.
    One,
    /// Don't care: matches either.
    DontCare,
}

impl Trit {
    fn mismatches(self, bit: bool) -> bool {
        match self {
            Trit::Zero => bit,
            Trit::One => !bit,
            Trit::DontCare => false,
        }
    }
}

/// Binarizes a feature vector around its median: the top half of features
/// map to 1. Median thresholding keeps the code balanced, which maximizes
/// Hamming separability.
pub fn binarize_features(features: &[f32]) -> Vec<bool> {
    let mut sorted: Vec<f32> = features.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = sorted[sorted.len() / 2];
    features.iter().map(|&v| v > median).collect()
}

/// Parameters of the TCAM macro model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcamParams {
    /// Bits per stored word (feature code length).
    pub word_bits: usize,
    /// 16T TCAM cell area at 28 nm, µm²/bit.
    pub cell_area_um2: f64,
    /// Energy per search per bit, pJ (match-line + search-line toggling).
    pub e_search_pj_per_bit: f64,
    /// Search latency, ns.
    pub t_search_ns: f64,
    /// Gaussian noise on the analog mismatch count.
    pub noise_sigma: f32,
}

impl TcamParams {
    /// 28 nm defaults: a 16T ternary cell is ~2.7x the 6T SRAM cell.
    pub fn paper_28nm(word_bits: usize) -> Self {
        TcamParams {
            word_bits,
            cell_area_um2: 0.6,
            e_search_pj_per_bit: 0.18,
            t_search_ns: 1.2,
            noise_sigma: 0.0,
        }
    }
}

/// One search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcamMatch {
    /// Index of the best-matching stored word.
    pub index: usize,
    /// Its Hamming distance to the query.
    pub distance: u32,
    /// Energy of the search, pJ.
    pub energy_pj: f64,
}

/// A behavioural ternary CAM storing one word per class prototype.
#[derive(Debug, Clone)]
pub struct TcamMacro {
    params: TcamParams,
    words: Vec<Vec<Trit>>,
}

impl TcamMacro {
    /// Creates an empty TCAM.
    pub fn new(params: TcamParams) -> Self {
        TcamMacro {
            params,
            words: Vec::new(),
        }
    }

    /// Stores a binary prototype (no don't-cares).
    ///
    /// # Panics
    ///
    /// Panics if the code length differs from `word_bits`.
    pub fn store(&mut self, code: &[bool]) -> usize {
        assert_eq!(code.len(), self.params.word_bits, "word length mismatch");
        self.words.push(
            code.iter()
                .map(|&b| if b { Trit::One } else { Trit::Zero })
                .collect(),
        );
        self.words.len() - 1
    }

    /// Stores a ternary word.
    ///
    /// # Panics
    ///
    /// Panics if the word length differs from `word_bits`.
    pub fn store_ternary(&mut self, word: Vec<Trit>) -> usize {
        assert_eq!(word.len(), self.params.word_bits, "word length mismatch");
        self.words.push(word);
        self.words.len() - 1
    }

    /// Number of stored words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether no words are stored.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Macro area in mm² (cells only; peripheral is small for CAM rows).
    pub fn area_mm2(&self) -> f64 {
        self.words.len() as f64 * self.params.word_bits as f64 * self.params.cell_area_um2 / 1e6
    }

    /// Searches for the stored word with minimum (noisy) Hamming distance.
    ///
    /// # Panics
    ///
    /// Panics if the TCAM is empty or the query length differs.
    pub fn search<R: Rng + ?Sized>(&self, query: &[bool], rng: &mut R) -> TcamMatch {
        assert!(!self.words.is_empty(), "search on empty TCAM");
        assert_eq!(query.len(), self.params.word_bits, "query length mismatch");
        let mut best = (0usize, f32::INFINITY, 0u32);
        for (i, word) in self.words.iter().enumerate() {
            let distance = word
                .iter()
                .zip(query)
                .filter(|(t, &b)| t.mismatches(b))
                .count() as u32;
            let noisy = distance as f32
                + if self.params.noise_sigma > 0.0 {
                    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                    let u2: f32 = rng.gen_range(0.0..1.0);
                    (-2.0 * u1.ln()).sqrt()
                        * (2.0 * std::f32::consts::PI * u2).cos()
                        * self.params.noise_sigma
                } else {
                    0.0
                };
            if noisy < best.1 {
                best = (i, noisy, distance);
            }
        }
        TcamMatch {
            index: best.0,
            distance: best.2,
            energy_pj: self.words.len() as f64
                * self.params.word_bits as f64
                * self.params.e_search_pj_per_bit,
        }
    }
}

/// Builds a TCAM prototype classifier from per-class mean features,
/// returning the macro and a closure-friendly classify function input
/// (the binarized prototypes are stored in class order).
pub fn prototype_tcam(prototypes: &[Tensor], params: TcamParams) -> TcamMacro {
    let mut tcam = TcamMacro::new(params);
    for p in prototypes {
        tcam.store(&binarize_features(p.data()));
    }
    tcam
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binarize_is_balanced() {
        let f: Vec<f32> = (0..64).map(|v| v as f32).collect();
        let code = binarize_features(&f);
        let ones = code.iter().filter(|&&b| b).count();
        assert!((24..=40).contains(&ones), "ones {ones}");
    }

    #[test]
    fn exact_match_has_zero_distance() {
        let params = TcamParams::paper_28nm(16);
        let mut tcam = TcamMacro::new(params);
        let code: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
        let idx = tcam.store(&code);
        let mut rng = StdRng::seed_from_u64(0);
        let m = tcam.search(&code, &mut rng);
        assert_eq!(m.index, idx);
        assert_eq!(m.distance, 0);
        assert!(m.energy_pj > 0.0);
    }

    #[test]
    fn nearest_word_wins() {
        let params = TcamParams::paper_28nm(8);
        let mut tcam = TcamMacro::new(params);
        tcam.store(&[true; 8]);
        tcam.store(&[false; 8]);
        let mut rng = StdRng::seed_from_u64(1);
        // Query with 6 ones: closer to all-ones.
        let q = [true, true, true, true, true, true, false, false];
        assert_eq!(tcam.search(&q, &mut rng).index, 0);
        // Query with 2 ones: closer to all-zeros.
        let q = [true, true, false, false, false, false, false, false];
        assert_eq!(tcam.search(&q, &mut rng).index, 1);
    }

    #[test]
    fn dont_care_always_matches() {
        let params = TcamParams::paper_28nm(4);
        let mut tcam = TcamMacro::new(params);
        tcam.store_ternary(vec![Trit::DontCare; 4]);
        tcam.store(&[true, false, true, false]);
        let mut rng = StdRng::seed_from_u64(2);
        let m = tcam.search(&[false, true, false, true], &mut rng);
        // All-don't-care word has distance 0 to anything.
        assert_eq!(m.index, 0);
        assert_eq!(m.distance, 0);
    }

    #[test]
    fn area_scales_with_contents() {
        let params = TcamParams::paper_28nm(128);
        let mut tcam = TcamMacro::new(params);
        assert_eq!(tcam.area_mm2(), 0.0);
        for _ in 0..10 {
            tcam.store(&[true; 128]);
        }
        let a = tcam.area_mm2();
        assert!((a - 10.0 * 128.0 * 0.6 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn prototype_classifier_separates_classes() {
        let mut rng = StdRng::seed_from_u64(3);
        // Two well-separated prototype directions.
        let p0 = Tensor::randn(&[64], 0.0, 1.0, &mut rng);
        let p1 = Tensor::randn(&[64], 0.0, 1.0, &mut rng);
        let tcam = prototype_tcam(&[p0.clone(), p1.clone()], TcamParams::paper_28nm(64));
        // Noisy versions of each prototype classify correctly.
        let mut correct = 0;
        for trial in 0..40 {
            let (proto, label) = if trial % 2 == 0 { (&p0, 0) } else { (&p1, 1) };
            let noisy = proto.add(&Tensor::randn(&[64], 0.0, 0.3, &mut rng));
            let q = binarize_features(noisy.data());
            if tcam.search(&q, &mut rng).index == label {
                correct += 1;
            }
        }
        assert!(correct >= 34, "correct {correct}/40");
    }
}
