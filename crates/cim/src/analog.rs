//! Behavioural analog model of a CiM subarray evaluation.
//!
//! One evaluation of the Fig. 5 datapath: bit lines are precharged, a
//! word-line pulse train (0..=3 pulses for a 2-bit activation digit) is
//! applied, strapped cells discharge their bit line once per pulse, and the
//! remnant bit-line charge is digitized by a column ADC. The analog
//! quantity is therefore the *count of cell discharge events* per column;
//! noise and ADC resolution corrupt it exactly the way the real bit-line
//! voltage sensing would.

use rand::Rng;

use crate::cells::RomCell;
use crate::faults::{AdcFault, ColumnFaults};

/// ADC transfer model for bit-line sensing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdcModel {
    /// Infinite-resolution readout: returns the exact discharge count.
    /// Used as the golden mode to verify functional equivalence.
    Ideal,
    /// A `bits`-resolution ADC whose full scale covers `full_scale`
    /// discharge events (at most `rows_per_activation * max_pulses`).
    /// Counts are linearly mapped to codes and back, so the output is the
    /// count rounded to the nearest of `2^bits - 1` levels and saturated.
    Sar {
        /// Resolution in bits (the paper's macro uses 5).
        bits: u8,
        /// Discharge-event count mapped to the top code.
        full_scale: u32,
    },
}

impl AdcModel {
    /// The paper's 5-bit column ADC with the given full scale.
    pub fn paper_5bit(full_scale: u32) -> Self {
        AdcModel::Sar {
            bits: 5,
            full_scale,
        }
    }

    /// Digitizes a (possibly noisy) discharge count, returning the count
    /// value the digital side will use.
    pub fn digitize(&self, count: f32) -> i64 {
        match *self {
            AdcModel::Ideal => count.round().max(0.0) as i64,
            AdcModel::Sar { bits, full_scale } => {
                let levels = (1u32 << bits) - 1;
                // When the count range fits the code range the ADC resolves
                // single discharge events (LSB = 1 count) — the design
                // point the paper's 5-bit ADC with limited simultaneous
                // rows sits at. Otherwise the LSB covers several counts and
                // the readout quantizes.
                let lsb = (full_scale as f32 / levels as f32).max(1.0);
                let code = (count / lsb).round().clamp(0.0, levels as f32);
                (code * lsb).round() as i64
            }
        }
    }

    /// Worst-case absolute quantization error in discharge counts.
    pub fn max_quantization_error(&self) -> f32 {
        match *self {
            AdcModel::Ideal => 0.5,
            AdcModel::Sar { bits, full_scale } => {
                let levels = (1u32 << bits) - 1;
                (full_scale as f32 / levels as f32).max(1.0) / 2.0 + 0.5
            }
        }
    }
}

/// Configuration of one analog subarray evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalogConfig {
    /// Physical rows in the subarray (128 in the paper's macro).
    pub rows: usize,
    /// Physical bit lines (256 in the paper's macro).
    pub cols: usize,
    /// Rows driven simultaneously per evaluation; larger values raise
    /// parallelism but stress ADC dynamic range (paper §4.3.1 trade-off).
    pub rows_per_activation: usize,
    /// Gaussian noise sigma on the discharge count (thermal/offset noise
    /// referred to the bit line), in count units.
    pub noise_sigma: f32,
    /// Maximum word-line pulses per evaluation (3 for 2-bit digits).
    pub max_pulses: u8,
    /// Column ADC model.
    pub adc: AdcModel,
}

impl AnalogConfig {
    /// The paper's 128x256 subarray with 5-bit ADCs, noiseless by default.
    ///
    /// 10 simultaneous rows x 3 pulses = 30 discharge events, which the
    /// 31-level 5-bit ADC resolves exactly — the ADC-count/active-rows
    /// trade-off the paper highlights in §4.3.1.
    pub fn paper_default() -> Self {
        let rows_per_activation = 10;
        AnalogConfig {
            rows: 128,
            cols: 256,
            rows_per_activation,
            noise_sigma: 0.0,
            max_pulses: 3,
            adc: AdcModel::paper_5bit((rows_per_activation as u32) * 3),
        }
    }

    /// Same geometry but with an ideal ADC (golden model).
    pub fn ideal() -> Self {
        AnalogConfig {
            adc: AdcModel::Ideal,
            ..Self::paper_default()
        }
    }
}

/// A subarray of ROM cells with the analog evaluation model.
#[derive(Debug, Clone)]
pub struct AnalogArray {
    config: AnalogConfig,
    /// Row-major cell matrix, `rows x cols`.
    cells: Vec<RomCell>,
    /// Per-column ADC transfer faults (`len == cols` when installed,
    /// empty on a healthy array — the default).
    col_faults: ColumnFaults,
}

impl AnalogArray {
    /// Fabricates an array from a row-major bit matrix.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != rows * cols`.
    pub fn from_bits(config: AnalogConfig, bits: &[bool]) -> Self {
        assert_eq!(
            bits.len(),
            config.rows * config.cols,
            "bit matrix must be rows x cols"
        );
        AnalogArray {
            config,
            cells: bits.iter().map(|&b| RomCell::new(b)).collect(),
            col_faults: Vec::new(),
        }
    }

    /// Installs per-column ADC transfer faults (see [`AdcFault`]); an
    /// empty table restores the healthy transfer.
    ///
    /// # Panics
    ///
    /// Panics if the table is neither empty nor one entry per column.
    pub fn set_column_faults(&mut self, faults: ColumnFaults) {
        assert!(
            faults.is_empty() || faults.len() == self.config.cols,
            "one fault slot per column"
        );
        self.col_faults = faults;
    }

    /// The installed ADC transfer fault of `col`, if any.
    pub fn column_fault(&self, col: usize) -> Option<AdcFault> {
        self.col_faults.get(col).copied().flatten()
    }

    /// The array configuration.
    pub fn config(&self) -> &AnalogConfig {
        &self.config
    }

    /// The stored bit at `(row, col)`.
    pub fn bit(&self, row: usize, col: usize) -> bool {
        self.cells[row * self.config.cols + col].bit()
    }

    /// Evaluates the array for one activation digit vector.
    ///
    /// `pulses[i]` is the pulse count (0..=max_pulses) applied to word line
    /// `i`. Rows are processed in groups of `rows_per_activation`; each
    /// group is one analog evaluation (noise + ADC applied per group, as in
    /// hardware), and group results are accumulated digitally.
    ///
    /// Returns per-column digitized MAC counts and the number of analog
    /// group evaluations performed (for energy accounting).
    ///
    /// # Panics
    ///
    /// Panics if `pulses.len() != rows` or any pulse count exceeds
    /// `max_pulses`.
    pub fn evaluate<R: Rng + ?Sized>(&self, pulses: &[u8], rng: &mut R) -> (Vec<i64>, usize) {
        let cfg = &self.config;
        assert_eq!(pulses.len(), cfg.rows, "one pulse count per word line");
        assert!(
            pulses.iter().all(|&p| p <= cfg.max_pulses),
            "pulse count exceeds max_pulses"
        );
        let mut totals = vec![0i64; cfg.cols];
        let mut evaluations = 0usize;
        for group_start in (0..cfg.rows).step_by(cfg.rows_per_activation) {
            let group_end = (group_start + cfg.rows_per_activation).min(cfg.rows);
            // Skip fully-silent groups: no word line toggles, no evaluation.
            if pulses[group_start..group_end].iter().all(|&p| p == 0) {
                continue;
            }
            evaluations += 1;
            for (col, total) in totals.iter_mut().enumerate() {
                let mut count = 0u32;
                for (offset, &pulse) in pulses[group_start..group_end].iter().enumerate() {
                    let row = group_start + offset;
                    count += self.cells[row * cfg.cols + col].conduct(pulse) as u32;
                }
                let noisy = if cfg.noise_sigma > 0.0 {
                    count as f32 + gaussian(rng) * cfg.noise_sigma
                } else {
                    count as f32
                };
                // A broken column-shared ADC corrupts the sensed count
                // before digitization (identical transform on every
                // execution path — see `crate::faults`).
                let sensed = match self.col_faults.get(col) {
                    Some(&Some(f)) => f.apply_analog(noisy),
                    _ => noisy,
                };
                *total += cfg.adc.digitize(sensed);
            }
        }
        (totals, evaluations)
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg(adc: AdcModel) -> AnalogConfig {
        AnalogConfig {
            rows: 8,
            cols: 4,
            rows_per_activation: 4,
            noise_sigma: 0.0,
            max_pulses: 3,
            adc,
        }
    }

    #[test]
    fn ideal_adc_matches_integer_dot_product() {
        let cfg = small_cfg(AdcModel::Ideal);
        let bits: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        let arr = AnalogArray::from_bits(cfg, &bits);
        let pulses = [1u8, 0, 3, 2, 1, 1, 0, 3];
        let mut rng = StdRng::seed_from_u64(0);
        let (out, _) = arr.evaluate(&pulses, &mut rng);
        for col in 0..4 {
            let expect: i64 = (0..8)
                .map(|r| (bits[r * 4 + col] as i64) * pulses[r] as i64)
                .sum();
            assert_eq!(out[col], expect);
        }
    }

    #[test]
    fn sar_adc_error_bounded() {
        let cfg = small_cfg(AdcModel::Sar {
            bits: 5,
            full_scale: 12,
        });
        let bits: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
        let arr = AnalogArray::from_bits(cfg, &bits);
        let pulses = [3u8, 3, 3, 3, 3, 3, 3, 3];
        let mut rng = StdRng::seed_from_u64(0);
        let (out, _) = arr.evaluate(&pulses, &mut rng);
        let per_group_err = cfg.adc.max_quantization_error() as i64 + 1;
        for col in 0..4 {
            let expect: i64 = (0..8)
                .map(|r| (bits[r * 4 + col] as i64) * pulses[r] as i64)
                .sum();
            assert!(
                (out[col] - expect).abs() <= 2 * per_group_err,
                "col {col}: {} vs {expect}",
                out[col]
            );
        }
    }

    #[test]
    fn silent_groups_skip_evaluations() {
        let cfg = small_cfg(AdcModel::Ideal);
        let arr = AnalogArray::from_bits(cfg, &[true; 32]);
        let mut rng = StdRng::seed_from_u64(0);
        // Only the first group has activity.
        let (_, evals) = arr.evaluate(&[1, 0, 0, 0, 0, 0, 0, 0], &mut rng);
        assert_eq!(evals, 1);
        let (_, evals) = arr.evaluate(&[0; 8], &mut rng);
        assert_eq!(evals, 0);
        let (_, evals) = arr.evaluate(&[1; 8], &mut rng);
        assert_eq!(evals, 2);
    }

    #[test]
    fn noise_perturbs_but_tracks() {
        let cfg = AnalogConfig {
            noise_sigma: 0.4,
            ..small_cfg(AdcModel::Ideal)
        };
        let bits = vec![true; 32];
        let arr = AnalogArray::from_bits(cfg, &bits);
        let mut rng = StdRng::seed_from_u64(7);
        let pulses = [2u8; 8];
        // Average over repeats approaches the true count (16 per column).
        let mut acc = 0.0;
        let reps = 200;
        for _ in 0..reps {
            let (out, _) = arr.evaluate(&pulses, &mut rng);
            acc += out[0] as f64;
        }
        let mean = acc / reps as f64;
        assert!((mean - 16.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "pulse count exceeds")]
    fn rejects_overdrive() {
        let cfg = small_cfg(AdcModel::Ideal);
        let arr = AnalogArray::from_bits(cfg, &[false; 32]);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = arr.evaluate(&[4, 0, 0, 0, 0, 0, 0, 0], &mut rng);
    }

    proptest! {
        #[test]
        fn prop_ideal_evaluation_exact(
            bits in prop::collection::vec(any::<bool>(), 32),
            pulses in prop::collection::vec(0u8..=3, 8),
        ) {
            let cfg = small_cfg(AdcModel::Ideal);
            let arr = AnalogArray::from_bits(cfg, &bits);
            let mut rng = StdRng::seed_from_u64(1);
            let (out, _) = arr.evaluate(&pulses, &mut rng);
            for col in 0..4 {
                let expect: i64 = (0..8)
                    .map(|r| (bits[r * 4 + col] as i64) * pulses[r] as i64)
                    .sum();
                prop_assert_eq!(out[col], expect);
            }
        }
    }
}
