//! The [`MvmBackend`] trait: one interface over every way the system can
//! execute a matrix-vector product.
//!
//! The graph executor in `yoloc-core` lowers each network layer onto a
//! programmed MVM engine, selected **per deployment and per layer**:
//!
//! * [`BackendKind::Analog`] — the cell-accurate analog reference path of
//!   [`RomMvm`] (precharge, pulse trains, noise injection, per-group ADC
//!   digitization). The only path that models bit-line noise.
//! * [`BackendKind::Popcount`] — [`RomMvm`] with its popcount fast path
//!   enabled: bit-identical to the analog path whenever both apply
//!   (property-tested), at a fraction of the simulation cost.
//! * [`BackendKind::Software`] — [`SoftwareMvm`], the pure integer-matmul
//!   golden model. No analog events, no energy: the digital reference a
//!   CiM deployment is validated against. At the paper's design point
//!   (5-bit ADC, 10 rows per activation) the noiseless CiM datapath is
//!   bit-exact against it.
//!
//! All three speak the same quantized-code protocol (`outs x ins` signed
//! weight codes, unsigned activation codes), so a deployment can swap a
//! layer between them without touching quantization or dequantization.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::faults::{FabricGeometry, FaultContext};
use crate::kernels::{KernelKind, MatmulLayout};
use crate::macro_model::{matmul_into, reference_mvm, MacroParams, MvmStats, RomMvm};

/// Which MVM implementation a layer is deployed on (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// Cell-accurate analog reference path (models noise).
    Analog,
    /// Popcount fast path with analog fallback (the default).
    Popcount,
    /// Pure-software integer matmul (digital golden reference).
    Software,
}

impl BackendKind {
    /// Short stable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Analog => "analog-reference",
            BackendKind::Popcount => "popcount",
            BackendKind::Software => "software",
        }
    }
}

/// Sized adapter over any (possibly unsized) [`RngCore`], so generic
/// `R: Rng + ?Sized` call chains can coerce into the `&mut dyn RngCore`
/// an object-safe [`MvmBackend`] takes. Delegation is transparent: the
/// wrapped generator's stream advances exactly as if used directly.
pub struct DynRng<'a, R: RngCore + ?Sized>(pub &'a mut R);

impl<R: RngCore + ?Sized> RngCore for DynRng<'_, R> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Reusable staging buffers for [`MvmBackend::mvm_batch`].
///
/// The batched kernel packs activation pulse bit-planes once per block
/// and tracks per-vector event counters; both live here so a steady-state
/// inference loop touches no allocator — the executor's arena owns one
/// `MvmScratch` per deployment and threads it through every call. All
/// buffers grow on first use and keep their capacity.
#[derive(Debug, Default)]
pub struct MvmScratch {
    /// Staged pulse bit-plane masks for the current (row-tile, chunk)
    /// step, laid out plane-major `[group][plane][vector]` with vectors
    /// padded to the 4-lane SIMD width, so each plane streams
    /// contiguously across the block.
    pub(crate) plane_masks: Vec<u64>,
    /// Per-vector `(analog_evaluations, adc_conversions, wl_pulses)`
    /// counters accumulated across the whole call.
    pub(crate) counters: Vec<[u64; 3]>,
    /// Staged lane-packed `i16` activation rows for the AVX2 `madd`
    /// matmul tier (unused by the scalar tier).
    pub(crate) acts16: Vec<i16>,
    /// Per-vector discharge counts of the column mask currently being
    /// streamed (padded to the 4-lane SIMD width).
    pub(crate) counts: Vec<u64>,
    /// Per-chunk nonzero-pulse bitmaps for the vectorized counter fold.
    pub(crate) fold_bitmaps: Vec<u64>,
    /// Lane-major `[ins x n_pad]` activation panel staged by the
    /// row-major batch entry when the layout crossover picks the
    /// transposed kernels.
    pub(crate) acts_t: Vec<i32>,
    /// Row-major activation staging for the reverse unpack (a
    /// transposed caller landing on a path that wants row-major acts).
    pub(crate) acts_rm: Vec<i32>,
}

impl MvmScratch {
    /// A fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// A programmed matrix-vector engine (`y = W x` over quantized codes).
///
/// Object-safe so the executor can hold heterogeneous per-layer backends;
/// the RNG is taken as `&mut dyn RngCore` (the shim blanket-implements
/// `Rng` for every `RngCore`, sized or not). Implementations that consume
/// no randomness must leave the RNG untouched so noiseless execution stays
/// bit-reproducible across backends.
pub trait MvmBackend: Send + Sync {
    /// Executes `y = W x` on unsigned activation codes, returning integer
    /// accumulator results and execution statistics.
    fn mvm(&self, acts: &[i32], rng: &mut dyn RngCore) -> (Vec<i64>, MvmStats);

    /// Batched entry: executes `n_vectors` consecutive activation vectors
    /// (packed back to back in `acts`, each `ins` long) through the
    /// programmed engine, writing the `n_vectors * outs` accumulators into
    /// `out` in vector order and merging the per-vector statistics into
    /// `stats` **in vector order, folded from zero per vector** — exactly
    /// the reduction a per-vector [`MvmBackend::mvm`] loop performs, so
    /// the two are bit-identical in values *and* stats (property-tested).
    ///
    /// This is the steady-state hot path of the arena executor: `out` and
    /// `scratch` are caller-owned and reused across calls, so a warmed-up
    /// inference allocates nothing here. Backends with a batched kernel
    /// (the popcount fast path) override it to traverse their programmed
    /// weight tables **once per block** instead of once per vector.
    ///
    /// # Panics
    ///
    /// Panics if `acts.len() != n_vectors * ins` or
    /// `out.len() != n_vectors * outs`.
    fn mvm_batch(
        &self,
        acts: &[i32],
        n_vectors: usize,
        out: &mut [i64],
        stats: &mut MvmStats,
        _scratch: &mut MvmScratch,
        rng: &mut dyn RngCore,
    ) {
        let (outs, ins) = self.dims();
        assert_eq!(acts.len(), n_vectors * ins, "batch activation length");
        assert_eq!(out.len(), n_vectors * outs, "batch output length");
        for v in 0..n_vectors {
            let (y, s) = self.mvm(&acts[v * ins..(v + 1) * ins], rng);
            out[v * outs..(v + 1) * outs].copy_from_slice(&y);
            stats.merge(&s);
        }
    }

    /// The activation layout this backend prefers for a block of
    /// `n_vectors` — [`MatmulLayout::Transposed`] asks the caller to
    /// stage the lane-major `[ins x n_pad]` panel
    /// (`n_pad = transposed_pad(n_vectors)`, padding lanes zero) and
    /// call [`MvmBackend::mvm_batch_transposed`], writing quantized
    /// codes straight into the panel with no repack pass. Backends
    /// without transposed kernels keep the row-major default.
    fn batch_layout(&self, _n_vectors: usize) -> MatmulLayout {
        MatmulLayout::RowMajor
    }

    /// Batched entry over a lane-major `[ins x n_pad]` activation panel
    /// (`acts_t[i * n_pad + v]`): bit-identical to
    /// [`MvmBackend::mvm_batch`] on the same values, in values *and*
    /// stats. The default unpacks the panel and delegates; backends
    /// with transposed kernels (the popcount fast path) override it to
    /// consume the panel directly.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    /// use yoloc_cim::backend::{program_backend, BackendKind, MvmScratch};
    /// use yoloc_cim::kernels::transposed_pad;
    /// use yoloc_cim::{MacroParams, MatmulLayout, MvmStats};
    ///
    /// // A narrow im2col-like shape: 2 outputs over 9 inputs.
    /// let codes: Vec<i32> = (0..2 * 9).map(|i| i as i32 - 9).collect();
    /// let mut b = program_backend(BackendKind::Popcount, MacroParams::rom_paper(), &codes, 2, 9);
    /// let (n, ins, outs) = (8usize, 9usize, 2usize);
    /// // The SIMD tiers ask for the transposed panel on this shape (the
    /// // scalar reference tier always stages row-major, so pin a SIMD
    /// // tier when the host has one)…
    /// use yoloc_cim::kernels::available_kinds;
    /// if let Some(&simd) = available_kinds().iter().find(|k| **k != yoloc_cim::KernelKind::Scalar) {
    ///     b.set_kernel(simd);
    ///     assert_eq!(b.batch_layout(n), MatmulLayout::Transposed);
    /// }
    /// // …and the panel entry accepts acts_t[i * n_pad + v] staged
    /// // directly on every tier (padding lanes zero).
    /// let n_pad = transposed_pad(n);
    /// let mut acts_t = vec![0i32; ins * n_pad];
    /// for v in 0..n {
    ///     for i in 0..ins {
    ///         acts_t[i * n_pad + v] = ((v * 7 + i * 3) % 256) as i32;
    ///     }
    /// }
    /// let mut out = vec![0i64; n * outs];
    /// let (mut stats, mut scratch) = (MvmStats::default(), MvmScratch::new());
    /// let mut rng = StdRng::seed_from_u64(0);
    /// b.mvm_batch_transposed(&acts_t, n, n_pad, &mut out, &mut stats, &mut scratch, &mut rng);
    /// // Lane v of the panel is vector v: same result as per-vector mvm.
    /// let v = 3;
    /// let acts_v: Vec<i32> = (0..ins).map(|i| acts_t[i * n_pad + v]).collect();
    /// assert_eq!(out[v * outs..(v + 1) * outs], b.mvm(&acts_v, &mut rng).0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `n_pad < n_vectors`, `n_pad` is not a multiple of 16,
    /// or `acts_t.len() < ins * n_pad`.
    #[allow(clippy::too_many_arguments)]
    fn mvm_batch_transposed(
        &self,
        acts_t: &[i32],
        n_vectors: usize,
        n_pad: usize,
        out: &mut [i64],
        stats: &mut MvmStats,
        scratch: &mut MvmScratch,
        rng: &mut dyn RngCore,
    ) {
        let (outs, ins) = self.dims();
        assert!(
            n_pad >= n_vectors && n_pad.is_multiple_of(16),
            "panel padding"
        );
        assert!(acts_t.len() >= ins * n_pad, "panel activation length");
        assert_eq!(out.len(), n_vectors * outs, "batch output length");
        let mut acts = std::mem::take(&mut scratch.acts_rm);
        acts.clear();
        acts.resize(n_vectors * ins, 0);
        for v in 0..n_vectors {
            for i in 0..ins {
                acts[v * ins + i] = acts_t[i * n_pad + v];
            }
        }
        self.mvm_batch(&acts, n_vectors, out, stats, scratch, rng);
        scratch.acts_rm = acts;
    }

    /// Tile-granular entry: the allocating thin wrapper over
    /// [`MvmBackend::mvm_batch`], returning the `count * outs`
    /// accumulators in vector order and the statistics folded **in vector
    /// order** from a zeroed accumulator.
    ///
    /// This is the unit of work the tile-parallel scheduler fans across
    /// workers: a tile's result (values *and* stats fold) is a pure
    /// function of its activation slice, never of which worker ran it, so
    /// tiled execution reassembles bit-identically to a serial walk that
    /// uses the same tile decomposition.
    ///
    /// # Panics
    ///
    /// Panics if `acts.len() != count * ins`.
    fn mvm_tile(&self, acts: &[i32], count: usize, rng: &mut dyn RngCore) -> (Vec<i64>, MvmStats) {
        let (outs, _) = self.dims();
        let mut values = vec![0i64; count * outs];
        let mut stats = MvmStats::default();
        let mut scratch = MvmScratch::new();
        self.mvm_batch(acts, count, &mut values, &mut stats, &mut scratch, rng);
        (values, stats)
    }

    /// Logical dimensions `(outs, ins)`.
    fn dims(&self) -> (usize, usize);

    /// Physical subarrays programmed (0 for the software reference).
    fn subarrays_used(&self) -> usize;

    /// Stable label of the path this backend executes on.
    fn backend_name(&self) -> &'static str;

    /// Enables or disables the popcount fast path where it exists
    /// (no-op on backends without one).
    fn set_fast_path(&mut self, _enabled: bool) {}

    /// Forces a specific kernel tier on backends with dispatched batch
    /// kernels (no-op elsewhere). Tier choice never changes results —
    /// that is exactly what the kernel-parity suites pin.
    fn set_kernel(&mut self, _kind: KernelKind) {}
}

impl MvmBackend for RomMvm {
    fn mvm(&self, acts: &[i32], rng: &mut dyn RngCore) -> (Vec<i64>, MvmStats) {
        RomMvm::mvm(self, acts, rng)
    }

    fn mvm_batch(
        &self,
        acts: &[i32],
        n_vectors: usize,
        out: &mut [i64],
        stats: &mut MvmStats,
        scratch: &mut MvmScratch,
        rng: &mut dyn RngCore,
    ) {
        let (outs, ins) = RomMvm::dims(self);
        assert_eq!(acts.len(), n_vectors * ins, "batch activation length");
        assert_eq!(out.len(), n_vectors * outs, "batch output length");
        if self.fast_path_active() {
            // The RNG is untouched, like every noiseless path. At
            // identity-ADC design points (the paper default) the batch
            // reduces to an exact integer matmul; otherwise one traversal
            // of the popcount tables serves the whole block.
            if self.adc_is_identity() {
                self.mvm_batch_exact(acts, n_vectors, out, stats, scratch);
            } else {
                self.mvm_batch_fast(acts, n_vectors, out, stats, scratch);
            }
        } else {
            for v in 0..n_vectors {
                let (y, s) = self.mvm_analog(&acts[v * ins..(v + 1) * ins], rng);
                out[v * outs..(v + 1) * outs].copy_from_slice(&y);
                stats.merge(&s);
            }
        }
    }

    fn batch_layout(&self, n_vectors: usize) -> MatmulLayout {
        self.batch_layout_for(n_vectors)
    }

    fn mvm_batch_transposed(
        &self,
        acts_t: &[i32],
        n_vectors: usize,
        n_pad: usize,
        out: &mut [i64],
        stats: &mut MvmStats,
        scratch: &mut MvmScratch,
        rng: &mut dyn RngCore,
    ) {
        let (outs, ins) = RomMvm::dims(self);
        assert!(
            n_pad >= n_vectors && n_pad.is_multiple_of(16),
            "panel padding"
        );
        assert!(acts_t.len() >= ins * n_pad, "panel activation length");
        assert_eq!(out.len(), n_vectors * outs, "batch output length");
        if self.fast_path_active() {
            // Panel-native kernels: matmul, counter fold and pulse
            // packing all read the lane-major panel directly.
            if self.adc_is_identity() {
                self.mvm_batch_exact_t(acts_t, n_vectors, n_pad, out, stats, scratch);
            } else {
                self.mvm_batch_fast_t(acts_t, n_vectors, n_pad, out, stats, scratch);
            }
        } else {
            // The noisy reference path is inherently per-vector (each
            // vector consumes its own RNG draws): unpack and fall back.
            let mut acts = std::mem::take(&mut scratch.acts_rm);
            acts.clear();
            acts.resize(n_vectors * ins, 0);
            for v in 0..n_vectors {
                for i in 0..ins {
                    acts[v * ins + i] = acts_t[i * n_pad + v];
                }
            }
            for v in 0..n_vectors {
                let (y, s) = self.mvm_analog(&acts[v * ins..(v + 1) * ins], rng);
                out[v * outs..(v + 1) * outs].copy_from_slice(&y);
                stats.merge(&s);
            }
            scratch.acts_rm = acts;
        }
    }

    fn dims(&self) -> (usize, usize) {
        RomMvm::dims(self)
    }

    fn subarrays_used(&self) -> usize {
        RomMvm::subarrays_used(self)
    }

    fn backend_name(&self) -> &'static str {
        if self.fast_path_active() {
            BackendKind::Popcount.label()
        } else {
            BackendKind::Analog.label()
        }
    }

    fn set_fast_path(&mut self, enabled: bool) {
        RomMvm::set_fast_path(self, enabled);
    }

    fn set_kernel(&mut self, kind: KernelKind) {
        RomMvm::set_kernel(self, kind);
    }
}

/// The pure-software integer reference backend: a plain `y = W x` over the
/// stored weight codes. Consumes no randomness and reports zero analog
/// activity — it is the digital golden model, not a circuit.
pub struct SoftwareMvm {
    codes: Vec<i32>,
    outs: usize,
    ins: usize,
}

impl SoftwareMvm {
    /// Stores a signed quantized weight matrix (`outs x ins`, row-major).
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != outs * ins`.
    pub fn program(codes: &[i32], outs: usize, ins: usize) -> Self {
        assert_eq!(codes.len(), outs * ins, "weight matrix size mismatch");
        SoftwareMvm {
            codes: codes.to_vec(),
            outs,
            ins,
        }
    }
}

impl MvmBackend for SoftwareMvm {
    fn mvm(&self, acts: &[i32], _rng: &mut dyn RngCore) -> (Vec<i64>, MvmStats) {
        assert_eq!(acts.len(), self.ins, "activation length mismatch");
        (
            reference_mvm(&self.codes, self.outs, self.ins, acts),
            MvmStats::default(),
        )
    }

    fn mvm_batch(
        &self,
        acts: &[i32],
        n_vectors: usize,
        out: &mut [i64],
        _stats: &mut MvmStats,
        _scratch: &mut MvmScratch,
        _rng: &mut dyn RngCore,
    ) {
        // Allocation-free digital reference: the shared integer matmul
        // into the caller's accumulator; no analog events, no randomness.
        assert_eq!(acts.len(), n_vectors * self.ins, "batch activation length");
        assert_eq!(out.len(), n_vectors * self.outs, "batch output length");
        matmul_into(&self.codes, self.outs, self.ins, acts, n_vectors, out);
    }

    fn dims(&self) -> (usize, usize) {
        (self.outs, self.ins)
    }

    fn subarrays_used(&self) -> usize {
        0
    }

    fn backend_name(&self) -> &'static str {
        BackendKind::Software.label()
    }
}

/// Programs a weight matrix onto the requested backend.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use yoloc_cim::backend::{program_backend, BackendKind};
/// use yoloc_cim::MacroParams;
///
/// let codes = vec![3i32; 4 * 64];
/// let acts = vec![10i32; 64];
/// let mut rng = StdRng::seed_from_u64(0);
/// let popcount = program_backend(BackendKind::Popcount, MacroParams::rom_paper(), &codes, 4, 64);
/// let software = program_backend(BackendKind::Software, MacroParams::rom_paper(), &codes, 4, 64);
/// // The paper's noiseless design point is bit-exact against software.
/// assert_eq!(popcount.mvm(&acts, &mut rng).0, software.mvm(&acts, &mut rng).0);
/// ```
///
/// # Panics
///
/// Panics if `codes.len() != outs * ins` or any code is out of range for
/// `params.weight_bits` (hardware backends only).
pub fn program_backend(
    kind: BackendKind,
    params: MacroParams,
    codes: &[i32],
    outs: usize,
    ins: usize,
) -> Box<dyn MvmBackend> {
    match kind {
        BackendKind::Popcount => Box::new(RomMvm::program(params, codes, outs, ins)),
        BackendKind::Analog => {
            let mut engine = RomMvm::program(params, codes, outs, ins);
            engine.set_fast_path(false);
            Box::new(engine)
        }
        BackendKind::Software => Box::new(SoftwareMvm::program(codes, outs, ins)),
    }
}

/// Programs a weight matrix onto the requested backend **through a
/// fault plan** (see [`crate::faults`] and
/// [`RomMvm::program_with_faults`]).
///
/// A fault-free context delegates to [`program_backend`], so the
/// resulting engine is bit-identical to the pristine path. The
/// software reference models the *code-visible* faults (stuck-at bits
/// and dead subarrays, which rewrite the effective weight codes) but
/// has no analog periphery: ADC transfer faults and link slowdowns
/// exist only on the hardware backends.
///
/// # Panics
///
/// Panics on the same conditions as [`RomMvm::program_with_faults`].
pub fn program_backend_faulted(
    kind: BackendKind,
    params: MacroParams,
    codes: &[i32],
    outs: usize,
    ins: usize,
    ctx: &FaultContext,
) -> Box<dyn MvmBackend> {
    if ctx.plan.is_none() && ctx.link_slowdown == 1.0 {
        return program_backend(kind, params, codes, outs, ins);
    }
    match kind {
        BackendKind::Popcount => {
            Box::new(RomMvm::program_with_faults(params, codes, outs, ins, ctx))
        }
        BackendKind::Analog => {
            let mut engine = RomMvm::program_with_faults(params, codes, outs, ins, ctx);
            engine.set_fast_path(false);
            Box::new(engine)
        }
        BackendKind::Software => {
            let geom = FabricGeometry::from_params(&params);
            let opa = geom.outs_per_array();
            let tiles = ins.div_ceil(params.rows) * outs.div_ceil(opa);
            let ids: Vec<u64> = if ctx.phys_ids.is_empty() {
                (0..tiles as u64).collect()
            } else {
                ctx.phys_ids.to_vec()
            };
            let mut eff = codes.to_vec();
            ctx.plan.apply_code_faults(&mut eff, outs, ins, &geom, &ids);
            Box::new(SoftwareMvm::program(&eff, outs, ins))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_matrix(outs: usize, ins: usize) -> (Vec<i32>, Vec<i32>) {
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 37) % 255) as i32 - 127)
            .collect();
        let acts: Vec<i32> = (0..ins).map(|i| ((i * 13) % 256) as i32).collect();
        (codes, acts)
    }

    #[test]
    fn all_three_backends_agree_at_paper_design_point() {
        // 10 rows/activation x 3 pulses fits the 5-bit ADC, so the
        // hardware paths are bit-exact against the software reference —
        // the trait-level statement of the repo's equivalence claim.
        let (codes, acts) = test_matrix(5, 200);
        let params = MacroParams::rom_paper();
        let mut rng = StdRng::seed_from_u64(1);
        let results: Vec<Vec<i64>> = [
            BackendKind::Analog,
            BackendKind::Popcount,
            BackendKind::Software,
        ]
        .into_iter()
        .map(|kind| {
            let b = program_backend(kind, params, &codes, 5, 200);
            b.mvm(&acts, &mut rng).0
        })
        .collect();
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn backend_names_reflect_execution_path() {
        let (codes, _) = test_matrix(2, 64);
        let params = MacroParams::rom_paper();
        let analog = program_backend(BackendKind::Analog, params, &codes, 2, 64);
        let popcount = program_backend(BackendKind::Popcount, params, &codes, 2, 64);
        let software = program_backend(BackendKind::Software, params, &codes, 2, 64);
        assert_eq!(analog.backend_name(), "analog-reference");
        assert_eq!(popcount.backend_name(), "popcount");
        assert_eq!(software.backend_name(), "software");
        // A noisy macro cannot take the fast path regardless of the flag.
        let mut noisy_params = params;
        noisy_params.noise_sigma = 0.2;
        let noisy = program_backend(BackendKind::Popcount, noisy_params, &codes, 2, 64);
        assert_eq!(noisy.backend_name(), "analog-reference");
    }

    #[test]
    fn software_backend_has_no_hardware_footprint() {
        let (codes, acts) = test_matrix(3, 100);
        let b = program_backend(
            BackendKind::Software,
            MacroParams::rom_paper(),
            &codes,
            3,
            100,
        );
        assert_eq!(b.subarrays_used(), 0);
        let mut rng = StdRng::seed_from_u64(2);
        let (_, stats) = b.mvm(&acts, &mut rng);
        assert_eq!(stats, MvmStats::default());
        // No randomness consumed: the stream is untouched.
        let mut probe = StdRng::seed_from_u64(2);
        assert_eq!(
            rand::Rng::gen_range(&mut rng, 0u64..u64::MAX),
            rand::Rng::gen_range(&mut probe, 0u64..u64::MAX)
        );
    }

    #[test]
    fn mvm_tile_matches_per_vector_mvm() {
        // The tile entry must be exactly the per-vector walk: same values
        // in vector order, same stats fold from zero.
        let (codes, _) = test_matrix(3, 64);
        let params = MacroParams::rom_paper();
        let b = program_backend(BackendKind::Popcount, params, &codes, 3, 64);
        let tile: Vec<i32> = (0..4 * 64).map(|i| (i * 31) % 256).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let (vals, stats) = b.mvm_tile(&tile, 4, &mut rng);
        assert_eq!(vals.len(), 4 * 3);
        let mut expect_vals = Vec::new();
        let mut expect_stats = MvmStats::default();
        for v in 0..4 {
            let (y, s) = b.mvm(&tile[v * 64..(v + 1) * 64], &mut rng);
            expect_stats.merge(&s);
            expect_vals.extend_from_slice(&y);
        }
        assert_eq!(vals, expect_vals);
        assert_eq!(stats, expect_stats);
    }

    /// The kernel-parity oracle: `mvm_batch` must equal a per-vector
    /// `mvm` loop bit for bit — accumulators in vector order, stats
    /// folded from zero per vector and merged in vector order.
    fn assert_batch_matches_per_vector(b: &dyn MvmBackend, acts: &[i32], n: usize, seed: u64) {
        let (outs, ins) = b.dims();
        let mut out = vec![0i64; n * outs];
        let mut stats = MvmStats::default();
        let mut scratch = MvmScratch::new();
        let mut rng = StdRng::seed_from_u64(seed);
        b.mvm_batch(acts, n, &mut out, &mut stats, &mut scratch, &mut rng);
        let mut expect_vals = Vec::new();
        let mut expect_stats = MvmStats::default();
        let mut rng = StdRng::seed_from_u64(seed);
        for v in 0..n {
            let (y, s) = b.mvm(&acts[v * ins..(v + 1) * ins], &mut rng);
            expect_stats.merge(&s);
            expect_vals.extend_from_slice(&y);
        }
        assert_eq!(out, expect_vals, "batched accumulators diverge");
        assert_eq!(stats, expect_stats, "batched stats fold diverges");
        // Scratch reuse must not leak state between calls.
        let mut out2 = vec![0i64; n * outs];
        let mut stats2 = MvmStats::default();
        let mut rng = StdRng::seed_from_u64(seed);
        b.mvm_batch(acts, n, &mut out2, &mut stats2, &mut scratch, &mut rng);
        assert_eq!(out, out2, "scratch reuse changed the accumulators");
        assert_eq!(stats, stats2, "scratch reuse changed the stats");
    }

    /// Runs the kernel-parity oracle under every kernel tier the host
    /// can execute, with a skip note when AVX2 is absent (CI also runs
    /// the whole suite under `YOLOC_KERNEL=scalar` / `=avx2`, which
    /// steers the `program`-time default this test then overrides).
    fn assert_batch_parity_all_kernels(
        b: &mut Box<dyn MvmBackend>,
        acts: &[i32],
        n: usize,
        seed: u64,
    ) {
        for kind in crate::kernels::available_kinds() {
            b.set_kernel(kind);
            assert_batch_matches_per_vector(b.as_ref(), acts, n, seed);
        }
        if !crate::kernels::avx2_available() {
            eprintln!("note: host lacks AVX2; kernel parity covered the scalar tier only");
        }
    }

    #[test]
    fn mvm_batch_matches_per_vector_all_backends() {
        // Paper design point (identity ADC transfer), multiple row and
        // column tiles, sparse and dense vectors — under every kernel
        // tier the host supports.
        let (outs, ins, n) = (6, 300, 7);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 37) % 255) as i32 - 127)
            .collect();
        let mut acts: Vec<i32> = (0..n * ins).map(|i| ((i * 13) % 256) as i32).collect();
        acts[2 * ins..3 * ins].fill(0); // an all-zero vector mid-block
        let params = MacroParams::rom_paper();
        for kind in [
            BackendKind::Popcount,
            BackendKind::Analog,
            BackendKind::Software,
        ] {
            let mut b = program_backend(kind, params, &codes, outs, ins);
            assert_batch_parity_all_kernels(&mut b, &acts, n, 9);
        }
    }

    #[test]
    fn mvm_batch_matches_per_vector_under_adc_quantization() {
        // Overdriven rows: the 5-bit ADC actually quantizes, so the
        // batched kernel must take the per-group digitize path (the
        // popcount mask stream, on every kernel tier) and still agree
        // bit for bit.
        let mut params = MacroParams::rom_paper();
        params.rows_per_activation = 32; // full scale 96 >> 31 levels
        let (outs, ins, n) = (5, 200, 4);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 41) % 255) as i32 - 127)
            .collect();
        let acts: Vec<i32> = (0..n * ins).map(|i| ((i * 23) % 256) as i32).collect();
        let mut b = program_backend(BackendKind::Popcount, params, &codes, outs, ins);
        assert_batch_parity_all_kernels(&mut b, &acts, n, 11);
    }

    #[test]
    fn forced_kernel_tiers_agree_with_software_reference() {
        // End-to-end tier equivalence at the batch entry: every tier's
        // accumulators equal the digital golden model's, and the scalar
        // and SIMD tiers produce identical MvmStats.
        let (outs, ins, n) = (9, 280, 6);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 53) % 255) as i32 - 127)
            .collect();
        let acts: Vec<i32> = (0..n * ins).map(|i| ((i * 29) % 256) as i32).collect();
        let params = MacroParams::rom_paper();
        let software = program_backend(BackendKind::Software, params, &codes, outs, ins);
        let mut golden = vec![0i64; n * outs];
        let mut rng = StdRng::seed_from_u64(21);
        let mut scratch = MvmScratch::new();
        software.mvm_batch(
            &acts,
            n,
            &mut golden,
            &mut MvmStats::default(),
            &mut scratch,
            &mut rng,
        );
        let mut rom = program_backend(BackendKind::Popcount, params, &codes, outs, ins);
        let mut tier_stats = Vec::new();
        for kind in crate::kernels::available_kinds() {
            rom.set_kernel(kind);
            let mut out = vec![0i64; n * outs];
            let mut stats = MvmStats::default();
            rom.mvm_batch(&acts, n, &mut out, &mut stats, &mut scratch, &mut rng);
            assert_eq!(out, golden, "{} tier diverges from software", kind.label());
            tier_stats.push(stats);
        }
        for s in &tier_stats[1..] {
            assert_eq!(*s, tier_stats[0], "tiers disagree on MvmStats");
        }
    }

    #[test]
    fn mvm_batch_noisy_macro_falls_back_per_vector() {
        // Noise disables the fast path: the batched entry walks the
        // analog reference per vector with the same RNG stream a manual
        // loop would consume.
        let mut params = MacroParams::rom_paper();
        params.noise_sigma = 0.3;
        let (outs, ins, n) = (3, 100, 3);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 19) % 255) as i32 - 127)
            .collect();
        let acts: Vec<i32> = (0..n * ins).map(|i| ((i * 7) % 256) as i32).collect();
        let b = program_backend(BackendKind::Popcount, params, &codes, outs, ins);
        assert_eq!(b.backend_name(), "analog-reference");
        assert_batch_matches_per_vector(b.as_ref(), &acts, n, 13);
    }

    #[test]
    fn mvm_batch_empty_block_is_a_no_op() {
        let (codes, _) = test_matrix(2, 64);
        let b = program_backend(
            BackendKind::Popcount,
            MacroParams::rom_paper(),
            &codes,
            2,
            64,
        );
        let mut stats = MvmStats::default();
        let mut scratch = MvmScratch::new();
        let mut rng = StdRng::seed_from_u64(1);
        b.mvm_batch(&[], 0, &mut [], &mut stats, &mut scratch, &mut rng);
        assert_eq!(stats, MvmStats::default());
    }

    /// Stages `acts` as a lane-major panel and asserts the transposed
    /// batch entry reproduces the row-major entry bit for bit — values
    /// and `MvmStats` — from the same RNG seed.
    fn assert_transposed_matches_row_major(b: &dyn MvmBackend, acts: &[i32], n: usize, seed: u64) {
        let (outs, ins) = b.dims();
        let n_pad = crate::kernels::transposed_pad(n);
        let mut acts_t = vec![0i32; ins * n_pad];
        for v in 0..n {
            for i in 0..ins {
                acts_t[i * n_pad + v] = acts[v * ins + i];
            }
        }
        let mut scratch = MvmScratch::new();
        let mut out_t = vec![0i64; n * outs];
        let mut stats_t = MvmStats::default();
        let mut rng = StdRng::seed_from_u64(seed);
        b.mvm_batch_transposed(
            &acts_t,
            n,
            n_pad,
            &mut out_t,
            &mut stats_t,
            &mut scratch,
            &mut rng,
        );
        let mut out_rm = vec![0i64; n * outs];
        let mut stats_rm = MvmStats::default();
        let mut rng = StdRng::seed_from_u64(seed);
        b.mvm_batch(acts, n, &mut out_rm, &mut stats_rm, &mut scratch, &mut rng);
        assert_eq!(out_t, out_rm, "transposed accumulators diverge");
        assert_eq!(stats_t, stats_rm, "transposed stats fold diverges");
    }

    #[test]
    fn transposed_batch_matches_row_major_all_backends_and_kernels() {
        // Both layouts, every backend, every kernel tier the host has:
        // exact path (identity ADC), including a shape the crossover
        // sends down the transposed SIMD path (small outs) and one it
        // keeps row-major (wide madd shape).
        let params = MacroParams::rom_paper();
        for (outs, ins, n) in [(2, 9, 12), (4, 18, 33), (16, 72, 8), (1, 300, 5)] {
            let codes: Vec<i32> = (0..outs * ins)
                .map(|i| ((i * 37) % 255) as i32 - 127)
                .collect();
            let acts: Vec<i32> = (0..n * ins).map(|i| ((i * 13) % 256) as i32).collect();
            for kind in [
                BackendKind::Popcount,
                BackendKind::Analog,
                BackendKind::Software,
            ] {
                let mut b = program_backend(kind, params, &codes, outs, ins);
                for k in crate::kernels::available_kinds() {
                    b.set_kernel(k);
                    assert_transposed_matches_row_major(b.as_ref(), &acts, n, 17);
                }
            }
        }
    }

    #[test]
    fn transposed_batch_matches_row_major_under_adc_quantization() {
        // Overdriven rows engage the panel-native pulse packing +
        // mask-stream path (`mvm_batch_fast_t`) rather than the exact
        // matmul; it must still agree with the row-major stream.
        let mut params = MacroParams::rom_paper();
        params.rows_per_activation = 32;
        let (outs, ins, n) = (5, 200, 9);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 41) % 255) as i32 - 127)
            .collect();
        let acts: Vec<i32> = (0..n * ins).map(|i| ((i * 23) % 256) as i32).collect();
        let mut b = program_backend(BackendKind::Popcount, params, &codes, outs, ins);
        for k in crate::kernels::available_kinds() {
            b.set_kernel(k);
            assert_transposed_matches_row_major(b.as_ref(), &acts, n, 19);
        }
    }

    #[test]
    fn transposed_batch_noisy_macro_falls_back_per_vector() {
        // Noise forces the per-vector analog walk: the transposed entry
        // unpacks the panel and must consume the RNG stream exactly as
        // the row-major entry does.
        let mut params = MacroParams::rom_paper();
        params.noise_sigma = 0.3;
        let (outs, ins, n) = (3, 100, 6);
        let codes: Vec<i32> = (0..outs * ins)
            .map(|i| ((i * 19) % 255) as i32 - 127)
            .collect();
        let acts: Vec<i32> = (0..n * ins).map(|i| ((i * 7) % 256) as i32).collect();
        let b = program_backend(BackendKind::Popcount, params, &codes, outs, ins);
        assert_eq!(b.backend_name(), "analog-reference");
        assert_eq!(b.batch_layout(n), MatmulLayout::RowMajor);
        assert_transposed_matches_row_major(b.as_ref(), &acts, n, 23);
    }

    #[test]
    fn batch_layout_is_shape_and_path_driven() {
        let (codes, _) = test_matrix(2, 9);
        let mut b = program_backend(
            BackendKind::Popcount,
            MacroParams::rom_paper(),
            &codes,
            2,
            9,
        );
        // The scalar reference tier keeps its fastest staging
        // (row-major) so measured speedups stay honest; its transposed
        // entries are exercised with explicit panels by the parity
        // suites.
        b.set_kernel(KernelKind::Scalar);
        assert_eq!(b.batch_layout(64), MatmulLayout::RowMajor);
        if let Some(&simd) = crate::kernels::available_kinds()
            .iter()
            .find(|k| **k != KernelKind::Scalar)
        {
            b.set_kernel(simd);
            // Small-outs shape at a real batch: transposed pays off.
            assert_eq!(b.batch_layout(64), MatmulLayout::Transposed);
            // Single vector: panel staging cannot amortize.
            assert_eq!(b.batch_layout(1), MatmulLayout::RowMajor);
            // The analog reference path is per-vector by construction.
            b.set_fast_path(false);
            assert_eq!(b.batch_layout(64), MatmulLayout::RowMajor);
            b.set_fast_path(true);
        }
        // The software backend keeps the trait default.
        let sw = program_backend(
            BackendKind::Software,
            MacroParams::rom_paper(),
            &codes,
            2,
            9,
        );
        assert_eq!(sw.batch_layout(64), MatmulLayout::RowMajor);
    }

    #[test]
    fn set_fast_path_via_trait_switches_rom_path() {
        let (codes, acts) = test_matrix(4, 128);
        let mut b = program_backend(
            BackendKind::Popcount,
            MacroParams::rom_paper(),
            &codes,
            4,
            128,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let fast = b.mvm(&acts, &mut rng).0;
        b.set_fast_path(false);
        assert_eq!(b.backend_name(), "analog-reference");
        assert_eq!(b.mvm(&acts, &mut rng).0, fast);
    }
}
