//! # yoloc-cim
//!
//! Behavioural circuit models for the YOLoC (DAC 2022) reproduction: the
//! proposed 1T/cell ROM-CiM bit cell and macro (Fig. 4a, Fig. 5), the
//! SRAM-CiM cell zoo it is compared against (Fig. 4b–f), an analog
//! bit-line/ADC evaluation model, technology-scaling data (Fig. 1a), and
//! the computed Table I macro specification.
//!
//! These models replace the 28 nm parasitic-extraction + SPICE layer of the
//! paper: every datapath step (precharge, unary word-line pulses,
//! charge-share discharge counting, ADC digitization, shift-&-add) is
//! modelled explicitly, and with an ideal ADC the macro output is
//! bit-exact against the integer reference — the same functional
//! equivalence SPICE verifies for the real macro.
//!
//! # Examples
//!
//! ```
//! use yoloc_cim::macro_model::MacroParams;
//!
//! let spec = MacroParams::rom_paper().spec();
//! assert_eq!(spec.operation_number, 256);
//! assert!((spec.inference_time_ns - 8.9).abs() < 1e-9);
//! ```

// `deny`, not `forbid`: the `kernels::avx2` and `kernels::avx512`
// modules are the only places allowed to opt back in (scoped `allow` +
// `deny(unsafe_op_in_unsafe_fn)` + a safety comment on every intrinsic
// block). Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analog;
pub mod backend;
pub mod cells;
pub mod faults;
pub mod kernels;
pub mod macro_model;
pub mod rom_image;
pub mod tcam;
pub mod technology;

pub use analog::{AdcModel, AnalogArray, AnalogConfig};
pub use backend::{
    program_backend, program_backend_faulted, BackendKind, DynRng, MvmBackend, SoftwareMvm,
};
pub use cells::{CellKind, RomCell};
pub use faults::{AdcFault, FabricGeometry, FaultContext, FaultPlan, FaultSpec, StuckKind};
pub use kernels::{
    avx2_available, avx512_available, choose_layout, transposed_pad, KernelDispatch, KernelKind,
    MatmulLayout,
};
pub use macro_model::{MacroParams, MacroSpec, MvmStats, RomMvm};
pub use rom_image::RomImage;
pub use tcam::{TcamMacro, TcamParams};
