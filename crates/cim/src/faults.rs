//! Deterministic, seeded fault injection for the CiM fabric.
//!
//! Real ROM-CiM silicon ships with defects: mask or contact failures
//! strap individual bit cells to a fixed value (stuck-at-0/1), whole
//! subarrays die (word-line driver or sense failures), column-shared
//! SAR ADCs drift into saturating or offset transfers, and chiplet
//! links degrade to a slower lane. This module models all four as a
//! *pure function of a seed and a rate specification*: every fault
//! decision is a counter-mode hash of `(seed, stream, entity ids)`, so
//! two programs of the same weights under the same [`FaultSpec`] see
//! the *same* faults — on every kernel tier, on every execution path,
//! on every host. That determinism is what lets the tier-parity suites
//! hold **under faults** and lets chaos runs replay byte-for-byte.
//!
//! Faults are applied at `program` time (see
//! [`crate::macro_model::RomMvm::program_with_faults`]):
//!
//! * **stuck-at bits** rewrite the *effective weight code* — a stuck
//!   bit-plane bit decodes, by construction of the two's-complement
//!   bit-plane encoding, to another valid signed code, so every path
//!   (analog reference, popcount fast, exact matmul, all SIMD tiers)
//!   computes on identical faulty weights with zero kernel changes;
//! * **dead subarrays** zero the codes of the tile's `(out, in)` range
//!   (a dead array contributes nothing to the accumulation);
//! * **ADC faults** install a per-column transfer applied to the
//!   discharge count *before* digitization, shared verbatim by the
//!   analog reference path and both popcount streams (both transforms
//!   map 0 to 0, so the skip-silent-column shortcuts stay exact);
//! * **link degradation** scales the engine's evaluation latency.
//!
//! Event counters ([`crate::macro_model::MvmStats`]) are pure functions
//! of the activations, so stuck/dead/ADC faults never perturb energy
//! accounting — only values — while link faults only perturb latency.

use serde::{Deserialize, Serialize};

use crate::macro_model::MacroParams;

/// Decision-stream tags: distinct hash domains per fault class so the
/// same entity id never correlates across classes.
const STREAM_STUCK: u64 = 0x57;
const STREAM_DEAD: u64 = 0xD0;
const STREAM_ADC: u64 = 0xAD;
const STREAM_LINK: u64 = 0x71;

/// One round of the splitmix64 output mixer (Steele et al.): a cheap,
/// well-distributed 64-bit hash used in counter mode.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A well-mixed draw for one `(stream, entity, sub-entity)` tuple.
fn draw(seed: u64, stream: u64, a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed ^ stream).wrapping_add(a)).wrapping_add(b))
}

/// Bernoulli trial on the top 53 bits of a draw: `rate = 0.0` never
/// fires, `rate = 1.0` always does.
fn bernoulli(h: u64, rate: f64) -> bool {
    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
}

/// Polarity of a stuck bit cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StuckKind {
    /// The cell reads as unprogrammed (`0`) regardless of the mask bit.
    Zero,
    /// The cell reads as strapped (`1`) regardless of the mask bit.
    One,
}

/// A faulty column-ADC transfer, applied to the discharge count of
/// every column sharing the broken ADC *before* digitization.
///
/// Both variants map a zero count to zero, which keeps the
/// silent-column shortcuts of the popcount streams exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdcFault {
    /// The ADC saturates early: counts clamp to `level`.
    Saturated {
        /// The highest count the broken ADC still resolves.
        level: u32,
    },
    /// The ADC has a negative input-referred offset: counts shift down
    /// by `offset`, floored at zero.
    Offset {
        /// Discharge counts lost to the offset.
        offset: u32,
    },
}

impl AdcFault {
    /// Applies the faulty transfer to an integer discharge count.
    pub fn apply_count(&self, count: u64) -> u64 {
        match *self {
            AdcFault::Saturated { level } => count.min(u64::from(level)),
            AdcFault::Offset { offset } => count.saturating_sub(u64::from(offset)),
        }
    }

    /// Applies the faulty transfer to a (possibly noisy) analog count.
    /// Agrees with [`AdcFault::apply_count`] on integer inputs.
    pub fn apply_analog(&self, count: f32) -> f32 {
        match *self {
            AdcFault::Saturated { level } => count.min(level as f32),
            AdcFault::Offset { offset } => (count - offset as f32).max(0.0),
        }
    }
}

/// Per-column ADC fault table of one subarray (`len == cols`; `None`
/// for healthy columns).
pub type ColumnFaults = Vec<Option<AdcFault>>;

/// Seed + rate specification from which a [`FaultPlan`] derives every
/// fault decision. All rates zero ([`FaultSpec::none`]) means a
/// provably fault-free fabric: the faulted programming path then
/// delegates to the pristine one, bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Root seed of every fault decision stream.
    pub seed: u64,
    /// Per-bit-cell probability of a stuck-at fault.
    pub stuck_rate: f64,
    /// Fraction of stuck cells strapped to `1` (the rest stick at `0`).
    pub stuck_one_fraction: f64,
    /// Per-subarray probability of the whole array being dead.
    pub dead_subarray_rate: f64,
    /// Per-ADC probability of a saturating/offset transfer fault
    /// (column-shared: one broken ADC corrupts all its columns).
    pub adc_fault_rate: f64,
    /// Per-chiplet-link probability of degradation.
    pub link_rate: f64,
    /// Evaluation-latency multiplier on a degraded link (`>= 1.0`).
    pub link_slowdown: f64,
}

impl FaultSpec {
    /// The fault-free specification (all rates zero).
    pub fn none() -> Self {
        FaultSpec {
            seed: 0,
            stuck_rate: 0.0,
            stuck_one_fraction: 0.5,
            dead_subarray_rate: 0.0,
            adc_fault_rate: 0.0,
            link_rate: 0.0,
            link_slowdown: 1.0,
        }
    }

    /// A uniform specification: every fault class at `rate`, under
    /// `seed` (links slow down 4x when degraded).
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultSpec {
            seed,
            stuck_rate: rate,
            stuck_one_fraction: 0.5,
            dead_subarray_rate: rate,
            adc_fault_rate: rate,
            link_rate: rate,
            link_slowdown: 4.0,
        }
    }

    /// Whether no fault class can ever fire under this specification.
    pub fn is_none(&self) -> bool {
        self.stuck_rate <= 0.0
            && self.dead_subarray_rate <= 0.0
            && self.adc_fault_rate <= 0.0
            && self.link_rate <= 0.0
    }
}

/// Physical tile geometry of the fabric: how logical weight cells map
/// onto subarray rows and bit-line columns (the layout
/// [`crate::macro_model::RomMvm::program`] builds).
#[derive(Debug, Clone, Copy)]
pub struct FabricGeometry {
    /// Word lines per subarray.
    pub rows: usize,
    /// Bit lines per subarray.
    pub cols: usize,
    /// Bit-plane columns per output.
    pub weight_bits: u8,
}

impl FabricGeometry {
    /// The geometry of a macro's subarrays.
    pub fn from_params(params: &MacroParams) -> Self {
        FabricGeometry {
            rows: params.rows,
            cols: params.cols,
            weight_bits: params.weight_bits,
        }
    }

    /// Outputs per subarray (`cols / weight_bits`).
    pub fn outs_per_array(&self) -> usize {
        self.cols / self.weight_bits as usize
    }
}

/// A deterministic fault oracle over the whole fabric.
///
/// Every query is a pure function of the [`FaultSpec`] and the queried
/// physical entity ids — no state is materialized, so a plan covering
/// millions of subarrays costs nothing to hold and two holders always
/// agree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    spec: FaultSpec,
}

impl FaultPlan {
    /// Wraps a specification into a queryable plan.
    pub fn new(spec: FaultSpec) -> Self {
        FaultPlan { spec }
    }

    /// The underlying specification.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Whether this plan can never produce a fault.
    pub fn is_none(&self) -> bool {
        self.spec.is_none()
    }

    /// Whether physical subarray `phys` is dead.
    pub fn subarray_dead(&self, phys: u64) -> bool {
        self.spec.dead_subarray_rate > 0.0
            && bernoulli(
                draw(self.spec.seed, STREAM_DEAD, phys, 0),
                self.spec.dead_subarray_rate,
            )
    }

    /// All dead subarrays among physical ids `0..total`, in id order.
    pub fn dead_subarrays(&self, total: u64) -> Vec<u64> {
        (0..total).filter(|&p| self.subarray_dead(p)).collect()
    }

    /// The stuck-at state of bit cell `(row, col)` of subarray `phys`.
    pub fn stuck_bit(&self, phys: u64, row: u64, col: u64) -> Option<StuckKind> {
        if self.spec.stuck_rate <= 0.0 {
            return None;
        }
        let h = draw(self.spec.seed, STREAM_STUCK, phys, (row << 20) | col);
        if !bernoulli(h, self.spec.stuck_rate) {
            return None;
        }
        if bernoulli(splitmix64(h), self.spec.stuck_one_fraction) {
            Some(StuckKind::One)
        } else {
            Some(StuckKind::Zero)
        }
    }

    /// The transfer fault of column-shared ADC `adc` of subarray
    /// `phys`, with magnitudes scaled to the reachable count range
    /// `full_scale`.
    pub fn adc_fault(&self, phys: u64, adc: u64, full_scale: u32) -> Option<AdcFault> {
        if self.spec.adc_fault_rate <= 0.0 {
            return None;
        }
        let h = draw(self.spec.seed, STREAM_ADC, phys, adc);
        if !bernoulli(h, self.spec.adc_fault_rate) {
            return None;
        }
        let h2 = splitmix64(h);
        if h2 & 1 == 0 {
            // Saturate somewhere in the upper half of the count range —
            // low enough to corrupt, high enough to stay plausible.
            let span = (full_scale / 2).max(1);
            Some(AdcFault::Saturated {
                level: full_scale.max(2) / 2 + (h2 >> 1) as u32 % span,
            })
        } else {
            Some(AdcFault::Offset {
                offset: 1 + (h2 >> 1) as u32 % 3,
            })
        }
    }

    /// Whether chiplet link `link` is degraded.
    pub fn link_degraded(&self, link: u64) -> bool {
        self.spec.link_rate > 0.0
            && bernoulli(
                draw(self.spec.seed, STREAM_LINK, link, 0),
                self.spec.link_rate,
            )
    }

    /// The evaluation-latency multiplier for an engine whose traffic
    /// crosses `links` (1.0 when every link is healthy; degraded links
    /// do not compound — the slowest lane bounds the transfer).
    pub fn slowdown_for_links(&self, links: &[u64]) -> f64 {
        if links.iter().any(|&l| self.link_degraded(l)) {
            self.spec.link_slowdown
        } else {
            1.0
        }
    }

    /// Rewrites `codes` (`outs x ins`, row-major, signed
    /// `weight_bits`-range) into the *effective* codes the faulty
    /// fabric computes with: dead subarrays zero their tile's range,
    /// stuck bit cells force the corresponding two's-complement
    /// bit-plane bit. `phys_ids` gives the physical subarray id of
    /// every tile in `row_tile * col_tiles + col_tile` order.
    ///
    /// # Panics
    ///
    /// Panics if `phys_ids` does not cover exactly the tile grid.
    pub fn apply_code_faults(
        &self,
        codes: &mut [i32],
        outs: usize,
        ins: usize,
        geom: &FabricGeometry,
        phys_ids: &[u64],
    ) {
        let opa = geom.outs_per_array();
        let row_tiles = ins.div_ceil(geom.rows);
        let col_tiles = outs.div_ceil(opa);
        assert_eq!(codes.len(), outs * ins, "weight matrix size mismatch");
        assert_eq!(
            phys_ids.len(),
            row_tiles * col_tiles,
            "one physical subarray id per tile"
        );
        let wb = geom.weight_bits as u32;
        let code_mask = (1u32 << wb) - 1;
        let sext = 32 - wb;
        for rt in 0..row_tiles {
            for ct in 0..col_tiles {
                let phys = phys_ids[rt * col_tiles + ct];
                let dead = self.subarray_dead(phys);
                if !dead && self.spec.stuck_rate <= 0.0 {
                    continue;
                }
                for r in 0..geom.rows {
                    let in_idx = rt * geom.rows + r;
                    if in_idx >= ins {
                        break;
                    }
                    for o in 0..opa {
                        let out_idx = ct * opa + o;
                        if out_idx >= outs {
                            break;
                        }
                        let slot = &mut codes[out_idx * ins + in_idx];
                        if dead {
                            *slot = 0;
                            continue;
                        }
                        let orig = (*slot as u32) & code_mask;
                        let mut u = orig;
                        for j in 0..wb as usize {
                            let col = (o * wb as usize + j) as u64;
                            match self.stuck_bit(phys, r as u64, col) {
                                Some(StuckKind::Zero) => u &= !(1u32 << j),
                                Some(StuckKind::One) => u |= 1u32 << j,
                                None => {}
                            }
                        }
                        if u != orig {
                            // Sign-extend the faulted bit pattern back to a
                            // valid signed code.
                            *slot = ((u << sext) as i32) >> sext;
                        }
                    }
                }
            }
        }
    }
}

/// Everything the faulted programming entries need beyond the weights:
/// the fault oracle, the physical identity of each tile, and the link
/// latency penalty the mapping layer resolved for this engine.
#[derive(Debug, Clone, Copy)]
pub struct FaultContext<'a> {
    /// The fault oracle.
    pub plan: &'a FaultPlan,
    /// Physical subarray id per tile (`row_tile * col_tiles +
    /// col_tile` order); empty means "use tile index as id".
    pub phys_ids: &'a [u64],
    /// Evaluation-latency multiplier from degraded links (1.0 = none).
    pub link_slowdown: f64,
}

impl<'a> FaultContext<'a> {
    /// A context with identity physical ids and healthy links.
    pub fn bare(plan: &'a FaultPlan) -> Self {
        FaultContext {
            plan,
            phys_ids: &[],
            link_slowdown: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_never_fault() {
        let plan = FaultPlan::new(FaultSpec::none());
        assert!(plan.is_none());
        for phys in 0..64 {
            assert!(!plan.subarray_dead(phys));
            assert!(!plan.link_degraded(phys));
            assert_eq!(plan.stuck_bit(phys, 3, 17), None);
            assert_eq!(plan.adc_fault(phys, 2, 30), None);
        }
    }

    #[test]
    fn unit_rates_always_fault() {
        let spec = FaultSpec {
            stuck_rate: 1.0,
            dead_subarray_rate: 1.0,
            adc_fault_rate: 1.0,
            link_rate: 1.0,
            ..FaultSpec::uniform(9, 1.0)
        };
        let plan = FaultPlan::new(spec);
        for phys in 0..16 {
            assert!(plan.subarray_dead(phys));
            assert!(plan.link_degraded(phys));
            assert!(plan.stuck_bit(phys, 0, 0).is_some());
            assert!(plan.adc_fault(phys, 0, 30).is_some());
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(FaultSpec::uniform(1, 0.3));
        let b = FaultPlan::new(FaultSpec::uniform(1, 0.3));
        let c = FaultPlan::new(FaultSpec::uniform(2, 0.3));
        let deads_a = a.dead_subarrays(256);
        assert_eq!(deads_a, b.dead_subarrays(256), "same seed, same plan");
        assert_ne!(deads_a, c.dead_subarrays(256), "seed changes the plan");
        // Rate roughly respected (256 trials at 0.3 -> ~77 expected).
        assert!((40..=120).contains(&deads_a.len()), "{}", deads_a.len());
    }

    #[test]
    fn adc_fault_magnitudes_are_in_range() {
        let plan = FaultPlan::new(FaultSpec::uniform(5, 1.0));
        for phys in 0..32 {
            match plan.adc_fault(phys, phys % 16, 30).unwrap() {
                AdcFault::Saturated { level } => {
                    assert!((1..30).contains(&level), "level {level}")
                }
                AdcFault::Offset { offset } => {
                    assert!((1..=3).contains(&offset), "offset {offset}")
                }
            }
        }
    }

    #[test]
    fn fault_transforms_fix_zero() {
        for f in [
            AdcFault::Saturated { level: 7 },
            AdcFault::Offset { offset: 2 },
        ] {
            assert_eq!(f.apply_count(0), 0);
            assert_eq!(f.apply_analog(0.0), 0.0);
            // Integer agreement between the two transforms.
            for c in 0..40u64 {
                assert_eq!(f.apply_count(c) as f32, f.apply_analog(c as f32));
            }
        }
    }

    #[test]
    fn code_faults_zero_dead_tiles_and_stay_in_range() {
        let geom = FabricGeometry {
            rows: 16,
            cols: 32,
            weight_bits: 8,
        };
        // 4 outputs/array, 2 row tiles x 2 col tiles for (7, 20).
        let (outs, ins) = (7, 20);
        let mut codes: Vec<i32> = (0..outs * ins).map(|i| (i % 255) as i32 - 127).collect();
        let spec = FaultSpec {
            dead_subarray_rate: 1.0,
            ..FaultSpec::none()
        };
        FaultPlan::new(spec).apply_code_faults(&mut codes, outs, ins, &geom, &[0, 1, 2, 3]);
        assert!(codes.iter().all(|&c| c == 0), "every tile is dead");
        let mut codes: Vec<i32> = (0..outs * ins).map(|i| (i % 255) as i32 - 127).collect();
        let stuck = FaultSpec {
            stuck_rate: 0.2,
            ..FaultSpec::uniform(3, 0.0)
        };
        FaultPlan::new(stuck).apply_code_faults(&mut codes, outs, ins, &geom, &[0, 1, 2, 3]);
        assert!(
            codes.iter().all(|&c| (-128..=127).contains(&c)),
            "faulted codes stay valid signed 8-bit"
        );
        let pristine: Vec<i32> = (0..outs * ins).map(|i| (i % 255) as i32 - 127).collect();
        assert_ne!(codes, pristine, "a 20% stuck rate must flip something");
    }
}
