//! Bit-cell models for the CiM cell zoo of Fig. 4.
//!
//! The proposed 1T ROM cell (Fig. 4a) stores '1' by strapping the access
//! transistor's gate to the word line and '0' by grounding it; computation
//! is the AND of the word-line pulse and the stored bit, accumulated as
//! charge on the bit line. The SRAM-CiM cells (Fig. 4b–f) are the published
//! baselines the paper compares density against ("14.5-29.5x in our
//! samples").

use serde::{Deserialize, Serialize};

/// The kinds of CiM bit cells compared in Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Proposed 1T/cell ROM-CiM cell (Fig. 4a, this work).
    Rom1T,
    /// Compact-rule 6T SRAM (density reference, not compute-capable).
    Sram6TCompact,
    /// 6T SRAM-CiM of ISSCC'21 \[3\] (Fig. 4b).
    Sram6TCim,
    /// 8T SRAM-CiM (Fig. 4c).
    Sram8T,
    /// Twin-8T SRAM-CiM (Fig. 4d).
    SramTwin8T,
    /// 10T SRAM-CiM (Fig. 4e).
    Sram10T,
    /// Local-computing-cell 6T (Fig. 4f).
    SramLcc6T,
}

impl CellKind {
    /// All cells in the Fig. 4 comparison, ROM first.
    pub const ALL: &'static [CellKind] = &[
        CellKind::Rom1T,
        CellKind::Sram6TCompact,
        CellKind::Sram6TCim,
        CellKind::Sram8T,
        CellKind::SramTwin8T,
        CellKind::Sram10T,
        CellKind::SramLcc6T,
    ];

    /// Cell area in µm²/bit at 28 nm.
    ///
    /// The ROM cell is the paper's headline 0.014 µm²/bit (Table I). The 6T
    /// compact-rule cell is pinned at 16x that (paper §4.3.1) and the
    /// ISSCC'21 cell at 18.5x; the remaining CiM cells span the paper's
    /// quoted 14.5-29.5x sample range.
    pub fn area_um2(self) -> f64 {
        match self {
            CellKind::Rom1T => 0.014,
            CellKind::Sram6TCompact => 0.014 * 16.0, // 0.224
            CellKind::Sram6TCim => 0.014 * 18.5,     // 0.259
            CellKind::Sram8T => 0.014 * 21.5,        // 0.301
            CellKind::SramTwin8T => 0.014 * 25.0,    // 0.350
            CellKind::Sram10T => 0.014 * 29.5,       // 0.413
            CellKind::SramLcc6T => 0.014 * 14.5,     // 0.203
        }
    }

    /// Number of transistors in the cell.
    pub fn transistors(self) -> u32 {
        match self {
            CellKind::Rom1T => 1,
            CellKind::Sram6TCompact | CellKind::Sram6TCim | CellKind::SramLcc6T => 6,
            CellKind::Sram8T | CellKind::SramTwin8T => 8,
            CellKind::Sram10T => 10,
        }
    }

    /// Whether the stored value can be rewritten at run time.
    pub fn writable(self) -> bool {
        !matches!(self, CellKind::Rom1T)
    }

    /// Whether the cell retains data with power removed.
    pub fn non_volatile(self) -> bool {
        matches!(self, CellKind::Rom1T)
    }

    /// Whether the cell supports in-memory multiply-accumulate.
    pub fn compute_capable(self) -> bool {
        !matches!(self, CellKind::Sram6TCompact)
    }

    /// Density ratio of this cell relative to the ROM cell (>= 1.0 means
    /// the ROM cell is denser).
    pub fn rom_density_advantage(self) -> f64 {
        self.area_um2() / CellKind::Rom1T.area_um2()
    }

    /// Static leakage per cell in pW at nominal voltage; the ROM cell has
    /// no storage node to leak ("standby power 0" in Table I).
    pub fn standby_leakage_pw(self) -> f64 {
        match self {
            CellKind::Rom1T => 0.0,
            _ => 1.0 + 0.15 * (self.transistors() as f64 - 6.0).max(0.0),
        }
    }
}

/// A stored ROM bit: '1' cells are physically strapped to the word line,
/// '0' cells are grounded (Fig. 4a). The value is fixed at mask time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RomCell {
    strapped: bool,
}

impl RomCell {
    /// Fabricates a cell holding `bit`.
    pub fn new(bit: bool) -> Self {
        RomCell { strapped: bit }
    }

    /// The stored bit.
    pub fn bit(self) -> bool {
        self.strapped
    }

    /// Cell conduction for a word-line pulse count `pulses`: the cell pulls
    /// the bit line down once per pulse only if it is strapped
    /// ("Only when both the input is high and the weight is physically
    /// connected to WL, BL will be connected to ground").
    pub fn conduct(self, pulses: u8) -> u8 {
        if self.strapped {
            pulses
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rom_cell_and_behaviour() {
        // Fig. 5 truth table: 1*1=1, 1*0=0, 0*0=0, 0*1=0.
        assert_eq!(RomCell::new(true).conduct(1), 1);
        assert_eq!(RomCell::new(false).conduct(1), 0);
        assert_eq!(RomCell::new(false).conduct(0), 0);
        assert_eq!(RomCell::new(true).conduct(0), 0);
        // Multi-pulse (2-bit activation digit).
        assert_eq!(RomCell::new(true).conduct(3), 3);
    }

    #[test]
    fn density_ratios_span_paper_range() {
        // Paper: "14.5-29.5x in our samples" over SRAM-CiM cells.
        for &cell in CellKind::ALL {
            if cell == CellKind::Rom1T {
                continue;
            }
            let r = cell.rom_density_advantage();
            assert!((14.0..=30.0).contains(&r), "{cell:?} ratio {r}");
        }
    }

    #[test]
    fn headline_numbers() {
        assert!((CellKind::Rom1T.area_um2() - 0.014).abs() < 1e-9);
        assert!((CellKind::Sram6TCompact.rom_density_advantage() - 16.0).abs() < 1e-9);
        assert!((CellKind::Sram6TCim.rom_density_advantage() - 18.5).abs() < 1e-9);
    }

    #[test]
    fn rom_properties() {
        assert!(CellKind::Rom1T.non_volatile());
        assert!(!CellKind::Rom1T.writable());
        assert_eq!(CellKind::Rom1T.standby_leakage_pw(), 0.0);
        assert!(CellKind::Sram6TCim.writable());
        assert!(CellKind::Sram6TCim.standby_leakage_pw() > 0.0);
    }
}
