//! Cost-model invariants of the memory-hierarchy models.
//!
//! The graph executor prices live traffic against these models, so the
//! system-level conclusions (Fig. 13/14 and the live `EnergyBreakdown`)
//! are only as sound as these invariants: energies monotone in bits,
//! DRAM strictly costlier per bit than on-chip SRAM, and the NoC's
//! uniform-traffic hop count exactly the analytic `(W + H) / 3`.

use yoloc_memory::{ChipletLink, DramModel, MeshNoc, SramBuffer};

#[test]
fn sram_energy_and_latency_monotone_in_bits() {
    let buf = SramBuffer::new_28nm(2 * 1024 * 1024);
    let mut last_e = -1.0;
    for bits in [0u64, 1, 64, 1_000, 65_536, 1_000_000] {
        let e = buf.access_energy_pj(bits);
        assert!(e >= last_e, "access energy not monotone at {bits}");
        last_e = e;
    }
    let mut last_t = -1.0;
    for bits in [1u64, 64, 1_000, 65_536] {
        let t = buf.stream_latency_ns(bits);
        assert!(t >= last_t, "stream latency not monotone at {bits}");
        last_t = t;
    }
}

#[test]
fn sram_energy_monotone_in_capacity() {
    // Bigger buffers pay more per access (longer word/bit lines).
    let mut last = -1.0;
    for cap in [1u64 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24] {
        let e = SramBuffer::new_28nm(cap).access_energy_pj(64);
        assert!(e >= last, "per-access energy not monotone at {cap} bits");
        last = e;
    }
}

#[test]
fn dram_energy_and_latency_monotone_in_bits() {
    let d = DramModel::lpddr4();
    let mut last_e = -1.0;
    let mut last_t = -1.0;
    for bits in [0u64, 1, 512, 10_000, 1_000_000, 368_000_000] {
        let e = d.transfer_energy_pj(bits);
        let t = d.transfer_latency_ns(bits);
        assert!(
            e >= last_e && t >= last_t,
            "DRAM cost not monotone at {bits}"
        );
        last_e = e;
        last_t = t;
    }
}

#[test]
fn dram_bit_strictly_costlier_than_sram_bit_at_any_buffer_size() {
    // The premise of the paper's memory-wall argument must hold for every
    // plausible on-chip buffer, not just the default.
    let d = DramModel::lpddr4();
    for cap in [1u64 << 16, 1 << 20, 1 << 24, 1 << 27] {
        let s = SramBuffer::new_28nm(cap);
        assert!(
            d.transfer_energy_pj(1) > s.access_energy_pj(1),
            "DRAM must beat SRAM per-bit energy at capacity {cap}"
        );
    }
}

#[test]
fn noc_average_hops_exact_on_small_meshes() {
    // Uniform-random traffic on a W x H mesh averages (W + H) / 3 hops —
    // check the implementation against exact values. The 1x1 mesh is the
    // guarded degenerate case: a single router never hops.
    for (w, h, expect) in [
        (1usize, 1usize, 0.0),
        (2, 2, 4.0 / 3.0),
        (3, 3, 2.0),
        (4, 4, 8.0 / 3.0),
        (6, 3, 3.0),
        (8, 2, 10.0 / 3.0),
    ] {
        let noc = MeshNoc::new_28nm(w, h);
        assert!(
            (noc.average_hops() - expect).abs() < 1e-12,
            "{w}x{h}: got {}, expect {expect}",
            noc.average_hops()
        );
    }
}

#[test]
fn noc_uniform_transfer_consistent_with_hop_model() {
    let noc = MeshNoc::new_28nm(4, 4);
    let bits = 4096;
    // Energy: exactly bits * e_hop * average_hops.
    let expect = bits as f64 * noc.e_hop_pj_per_bit * noc.average_hops();
    assert!((noc.uniform_transfer_energy_pj(bits) - expect).abs() < 1e-9);
    // Monotone in bits, zero at zero.
    assert_eq!(noc.uniform_transfer_energy_pj(0), 0.0);
    assert_eq!(noc.uniform_transfer_latency_ns(0), 0.0);
    // Monotone (non-decreasing) in bits; strictly larger once the
    // transfer spans multiple flits.
    let mut last = 0.0;
    for b in [1u64, 128, 1_000, 100_000] {
        let t = noc.uniform_transfer_latency_ns(b);
        assert!(t >= last);
        last = t;
    }
    assert!(
        noc.uniform_transfer_latency_ns(100_000) > noc.uniform_transfer_latency_ns(1),
        "multi-flit transfers must take longer"
    );
}

#[test]
fn cost_hierarchy_noc_below_link_below_dram() {
    // Per-bit movement cost must order on-chip < die-to-die < off-chip —
    // the ordering every system-level claim in the paper rests on.
    let noc = MeshNoc::new_28nm(4, 4);
    let link = ChipletLink::simba();
    let dram = DramModel::lpddr4();
    let noc_bit = noc.uniform_transfer_energy_pj(1);
    let link_bit = link.transfer_energy_pj(1);
    let dram_bit = dram.transfer_energy_pj(1);
    assert!(noc_bit < link_bit, "NoC {noc_bit} vs link {link_bit}");
    assert!(link_bit < dram_bit, "link {link_bit} vs DRAM {dram_bit}");
}
