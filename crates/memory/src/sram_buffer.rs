//! Analytic SRAM buffer model (the role CACTI plays in the paper).
//!
//! The paper obtains SRAM-buffer and DRAM read/write energy and latency
//! from CACTI \[24\]. We replace it with a capacity-scaled analytic model:
//! access energy and latency grow with the square root of capacity (word
//! lines and bit lines both scale with sqrt(bits) in a square macro), which
//! is the first-order behaviour CACTI itself exhibits.

use serde::{Deserialize, Serialize};

/// An on-chip SRAM buffer (cache) of a given capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramBuffer {
    /// Capacity in bits.
    pub capacity_bits: u64,
    /// Access word width in bits.
    pub word_bits: u32,
    /// Energy per bit at the 64 Kb reference size, pJ/bit.
    pub e_ref_pj_per_bit: f64,
    /// Latency at the 64 Kb reference size, ns.
    pub t_ref_ns: f64,
    /// Area efficiency: buffer density in Mb/mm² (plain 6T, compact rule).
    pub density_mb_per_mm2: f64,
}

/// Reference capacity for the scaling law (64 Kb).
const REF_BITS: f64 = 65_536.0;

impl SramBuffer {
    /// A 28 nm SRAM buffer with published-ballpark constants:
    /// ~0.08 pJ/bit access at 64 Kb, ~0.6 ns, 2.6 Mb/mm² density.
    pub fn new_28nm(capacity_bits: u64) -> Self {
        SramBuffer {
            capacity_bits,
            word_bits: 64,
            e_ref_pj_per_bit: 0.08,
            t_ref_ns: 0.6,
            density_mb_per_mm2: 2.6,
        }
    }

    fn scale(&self) -> f64 {
        (self.capacity_bits as f64 / REF_BITS).max(1.0).sqrt()
    }

    /// Energy to read or write `bits` bits, in pJ.
    pub fn access_energy_pj(&self, bits: u64) -> f64 {
        bits as f64 * self.e_ref_pj_per_bit * self.scale()
    }

    /// Latency of one word access in ns.
    pub fn access_latency_ns(&self) -> f64 {
        self.t_ref_ns * self.scale()
    }

    /// Time to stream `bits` bits through the buffer port, ns.
    pub fn stream_latency_ns(&self, bits: u64) -> f64 {
        let words = bits.div_ceil(self.word_bits as u64);
        // Pipelined accesses: one word per cycle after the first.
        self.access_latency_ns() + (words.saturating_sub(1)) as f64 * 0.25 * self.scale()
    }

    /// Buffer area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.capacity_bits as f64 / 1_048_576.0 / self.density_mb_per_mm2
    }

    /// Static leakage power in watts (~1 pW/cell at 28 nm).
    pub fn leakage_w(&self) -> f64 {
        self.capacity_bits as f64 * 1.0e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_with_capacity() {
        let small = SramBuffer::new_28nm(64 * 1024);
        let big = SramBuffer::new_28nm(16 * 1024 * 1024);
        let ratio = big.access_energy_pj(64) / small.access_energy_pj(64);
        // sqrt(16 Mb / 64 Kb) = 16.
        assert!((ratio - 16.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn latency_monotonic_in_capacity() {
        let mut last = 0.0;
        for bits in [1u64 << 16, 1 << 18, 1 << 20, 1 << 24] {
            let b = SramBuffer::new_28nm(bits);
            assert!(b.access_latency_ns() >= last);
            last = b.access_latency_ns();
        }
    }

    #[test]
    fn area_tracks_density() {
        let b = SramBuffer::new_28nm(2_600 * 1024 * 1024 / 1024); // 2.6 Mb
        assert!((b.area_mm2() - 1.0).abs() < 0.05, "{}", b.area_mm2());
    }

    #[test]
    fn streaming_beats_random_access() {
        let b = SramBuffer::new_28nm(1 << 20);
        let stream = b.stream_latency_ns(64 * 100);
        let random = b.access_latency_ns() * 100.0;
        assert!(stream < random);
    }

    #[test]
    fn tiny_buffers_clamp_to_reference() {
        let b = SramBuffer::new_28nm(1024);
        assert!((b.access_latency_ns() - b.t_ref_ns).abs() < 1e-12);
    }
}
