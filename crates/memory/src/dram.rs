//! Off-chip DRAM interface model.
//!
//! The single most important constant in the whole system evaluation: the
//! energy to move one bit across the chip boundary from DRAM. The paper's
//! argument is that an iso-area SRAM-CiM chip must stream most of a large
//! model's weights from DRAM every inference, and this energy dwarfs the
//! CiM computation itself.

use serde::{Deserialize, Serialize};

/// DRAM interface parameters (LPDDR4-class, CACTI-IO-ballpark).
///
/// # Examples
///
/// ```
/// use yoloc_memory::DramModel;
///
/// let d = DramModel::lpddr4();
/// // Streaming 46 M of 8-bit weights costs millijoules — the memory wall.
/// assert!(d.transfer_energy_pj(46_000_000 * 8) > 1e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    /// End-to-end energy per bit transferred (DRAM core + IO + PHY +
    /// on-chip receiver), pJ/bit.
    pub e_pj_per_bit: f64,
    /// Sustained interface bandwidth, Gb/s.
    pub bandwidth_gbps: f64,
    /// Fixed latency per burst transaction, ns.
    pub t_burst_ns: f64,
    /// Bits per burst transaction.
    pub burst_bits: u64,
    /// Background/refresh power attributed to this interface, W.
    pub background_w: f64,
}

impl DramModel {
    /// LPDDR4-class defaults at 28 nm host: ~13 pJ/bit end to end,
    /// 25.6 Gb/s per channel.
    pub fn lpddr4() -> Self {
        DramModel {
            e_pj_per_bit: 13.0,
            bandwidth_gbps: 25.6,
            t_burst_ns: 45.0,
            burst_bits: 512,
            background_w: 0.05,
        }
    }

    /// Energy to transfer `bits` bits, pJ.
    pub fn transfer_energy_pj(&self, bits: u64) -> f64 {
        bits as f64 * self.e_pj_per_bit
    }

    /// Time to transfer `bits` bits, ns (bursts pipelined at the sustained
    /// bandwidth after the first burst latency).
    pub fn transfer_latency_ns(&self, bits: u64) -> f64 {
        if bits == 0 {
            return 0.0;
        }
        self.t_burst_ns + bits as f64 / self.bandwidth_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_linear_in_bits() {
        let d = DramModel::lpddr4();
        assert_eq!(d.transfer_energy_pj(0), 0.0);
        let e1 = d.transfer_energy_pj(1_000_000);
        let e2 = d.transfer_energy_pj(2_000_000);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn latency_includes_burst_setup() {
        let d = DramModel::lpddr4();
        assert_eq!(d.transfer_latency_ns(0), 0.0);
        assert!(d.transfer_latency_ns(1) >= d.t_burst_ns);
        // 25.6 Gb/s: 25.6 bits per ns.
        let t = d.transfer_latency_ns(25_600);
        assert!((t - (45.0 + 1000.0)).abs() < 1.0, "{t}");
    }

    #[test]
    fn dram_bit_costs_more_than_onchip_sram_bit() {
        // The premise of the paper's energy argument.
        let d = DramModel::lpddr4();
        let s = crate::sram_buffer::SramBuffer::new_28nm(1 << 21);
        let dram_per_bit = d.transfer_energy_pj(1);
        let sram_per_bit = s.access_energy_pj(1);
        assert!(dram_per_bit / sram_per_bit > 3.0);
    }
}
