//! # yoloc-memory
//!
//! Memory-hierarchy models for the YOLoC (DAC 2022) reproduction: an
//! analytic capacity-scaled SRAM buffer (replacing CACTI \[24\]), an
//! LPDDR4-class DRAM interface, and a SIMBA-class chiplet link \[25\]. These
//! supply the energy/latency constants the system-level evaluation of
//! Fig. 13/14 is built on.
//!
//! # Examples
//!
//! ```
//! use yoloc_memory::{DramModel, SramBuffer};
//!
//! let dram = DramModel::lpddr4();
//! let buf = SramBuffer::new_28nm(2 * 1024 * 1024);
//! // Moving a bit from DRAM costs far more than reading it on chip —
//! // the memory-wall premise of the paper.
//! assert!(dram.transfer_energy_pj(1) > buf.access_energy_pj(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chiplet;
pub mod dram;
pub mod noc;
pub mod sram_buffer;

pub use chiplet::ChipletLink;
pub use dram::DramModel;
pub use noc::MeshNoc;
pub use sram_buffer::SramBuffer;
