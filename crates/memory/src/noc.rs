//! On-chip network model (the NoC of Fig. 9).
//!
//! YOLoC's controller moves feature maps between CiM macro clusters and
//! the cache over a mesh NoC. This model prices that movement: hop energy
//! and latency over a 2-D mesh with dimension-ordered routing.

use serde::{Deserialize, Serialize};

/// A 2-D mesh network-on-chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeshNoc {
    /// Mesh width (routers per row).
    pub width: usize,
    /// Mesh height.
    pub height: usize,
    /// Energy per bit per hop, pJ (router + link at 28 nm: ~0.05 pJ/bit).
    pub e_hop_pj_per_bit: f64,
    /// Latency per hop, ns.
    pub t_hop_ns: f64,
    /// Flit width in bits.
    pub flit_bits: u32,
}

impl MeshNoc {
    /// A 28 nm mesh with published-ballpark constants.
    pub fn new_28nm(width: usize, height: usize) -> Self {
        MeshNoc {
            width,
            height,
            e_hop_pj_per_bit: 0.05,
            t_hop_ns: 0.5,
            flit_bits: 128,
        }
    }

    /// Manhattan hop count between routers `(x0, y0)` and `(x1, y1)`
    /// (dimension-ordered routing).
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is outside the mesh.
    pub fn hops(&self, from: (usize, usize), to: (usize, usize)) -> usize {
        assert!(
            from.0 < self.width && from.1 < self.height,
            "from outside mesh"
        );
        assert!(to.0 < self.width && to.1 < self.height, "to outside mesh");
        from.0.abs_diff(to.0) + from.1.abs_diff(to.1)
    }

    /// Average hop count under uniform-random traffic: `(W + H) / 3` for
    /// a mesh (standard result).
    ///
    /// Degenerate meshes are guarded: a single-router mesh (1x1 — e.g. a
    /// chiplet shard so small it holds one cluster) has nowhere to hop, so
    /// the average is exactly 0, and a zero-dimension mesh would otherwise
    /// divide by zero downstream of the per-hop latency model.
    pub fn average_hops(&self) -> f64 {
        if self.width * self.height <= 1 {
            return 0.0;
        }
        (self.width as f64 + self.height as f64) / 3.0
    }

    /// Energy to move `bits` over `hops` hops, pJ.
    pub fn transfer_energy_pj(&self, bits: u64, hops: usize) -> f64 {
        bits as f64 * self.e_hop_pj_per_bit * hops as f64
    }

    /// Energy to move `bits` under uniform-random traffic (the graph
    /// executor's model for feature maps travelling between the cache and
    /// whatever macro cluster holds the next layer): [`MeshNoc::average_hops`]
    /// hops per bit, pJ.
    pub fn uniform_transfer_energy_pj(&self, bits: u64) -> f64 {
        bits as f64 * self.e_hop_pj_per_bit * self.average_hops()
    }

    /// Latency of one `bits`-sized transfer at the average hop count:
    /// head latency plus pipelined flit serialization, ns.
    pub fn uniform_transfer_latency_ns(&self, bits: u64) -> f64 {
        if bits == 0 {
            return 0.0;
        }
        let flits = bits.div_ceil(self.flit_bits as u64);
        self.average_hops() * self.t_hop_ns + (flits.saturating_sub(1)) as f64 * self.t_hop_ns
    }

    /// Latency to move `bits` over `hops` hops: head latency plus
    /// pipelined flit serialization, ns.
    pub fn transfer_latency_ns(&self, bits: u64, hops: usize) -> f64 {
        if bits == 0 {
            return 0.0;
        }
        let flits = bits.div_ceil(self.flit_bits as u64);
        hops as f64 * self.t_hop_ns + (flits.saturating_sub(1)) as f64 * self.t_hop_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_counting() {
        let noc = MeshNoc::new_28nm(4, 4);
        assert_eq!(noc.hops((0, 0), (3, 3)), 6);
        assert_eq!(noc.hops((2, 1), (2, 1)), 0);
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn rejects_out_of_mesh() {
        let noc = MeshNoc::new_28nm(2, 2);
        let _ = noc.hops((0, 0), (2, 0));
    }

    #[test]
    fn average_hops_formula() {
        let noc = MeshNoc::new_28nm(6, 3);
        assert!((noc.average_hops() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_single_router_mesh_has_zero_hops() {
        // A 1x1 mesh has one router: traffic never hops, so hop-priced
        // energy must be exactly zero (the (W+H)/3 formula would claim
        // 2/3 of a hop) and latency reduces to pure flit serialization.
        let noc = MeshNoc::new_28nm(1, 1);
        assert_eq!(noc.average_hops(), 0.0);
        assert_eq!(noc.hops((0, 0), (0, 0)), 0);
        assert_eq!(noc.uniform_transfer_energy_pj(10_000), 0.0);
        // 10 flits: 9 serialization slots, no head hops.
        let t = noc.uniform_transfer_latency_ns(128 * 10);
        assert!((t - 9.0 * noc.t_hop_ns).abs() < 1e-12);
        // Zero-dimension meshes are guarded too (no NaN/inf downstream).
        let degenerate = MeshNoc::new_28nm(0, 4);
        assert_eq!(degenerate.average_hops(), 0.0);
        assert!(degenerate.uniform_transfer_latency_ns(64).is_finite());
    }

    #[test]
    fn energy_linear_in_bits_and_hops() {
        let noc = MeshNoc::new_28nm(4, 4);
        let e1 = noc.transfer_energy_pj(1000, 2);
        assert!((e1 - 1000.0 * 0.05 * 2.0).abs() < 1e-9);
        assert_eq!(noc.transfer_energy_pj(0, 5), 0.0);
    }

    #[test]
    fn latency_pipelines_flits() {
        let noc = MeshNoc::new_28nm(4, 4);
        assert_eq!(noc.transfer_latency_ns(0, 3), 0.0);
        // One flit: pure hop latency.
        assert!((noc.transfer_latency_ns(64, 3) - 1.5).abs() < 1e-9);
        // Many flits amortize hops.
        let t = noc.transfer_latency_ns(128 * 10, 3);
        assert!((t - (1.5 + 9.0 * 0.5)).abs() < 1e-9);
    }

    #[test]
    fn noc_bit_cheaper_than_chiplet_bit() {
        // On-chip movement must be far cheaper than crossing dies —
        // otherwise the chiplet baseline comparison would be meaningless.
        let noc = MeshNoc::new_28nm(4, 4);
        let per_bit = noc.e_hop_pj_per_bit * noc.average_hops();
        assert!(per_bit < crate::chiplet::ChipletLink::simba().e_pj_per_bit);
    }
}
