//! Chiplet interconnect model (Fig. 13c baseline).
//!
//! The SRAM-CiM chiplet system stores all weights across several chips, so
//! no DRAM is needed, but intermediate feature maps cross chip boundaries.
//! Link parameters follow SIMBA's ground-referenced single-ended serial
//! link \[25\]: 1.17 pJ/b at 25 Gb/s/pin.

use serde::{Deserialize, Serialize};

/// A chip-to-chip serial link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipletLink {
    /// Energy per bit across the link, pJ/bit.
    pub e_pj_per_bit: f64,
    /// Per-pin bandwidth, Gb/s.
    pub gbps_per_pin: f64,
    /// Pins per link.
    pub pins: u32,
    /// Link serialization/deserialization latency, ns.
    pub t_serdes_ns: f64,
}

impl ChipletLink {
    /// SIMBA-class link: 1.17 pJ/b, 25 Gb/s/pin \[25\].
    pub fn simba() -> Self {
        ChipletLink {
            e_pj_per_bit: 1.17,
            gbps_per_pin: 25.0,
            pins: 8,
            t_serdes_ns: 20.0,
        }
    }

    /// Aggregate link bandwidth, Gb/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.gbps_per_pin * self.pins as f64
    }

    /// Energy to move `bits` bits across the link, pJ.
    pub fn transfer_energy_pj(&self, bits: u64) -> f64 {
        bits as f64 * self.e_pj_per_bit
    }

    /// Time to move `bits` bits across the link, ns.
    pub fn transfer_latency_ns(&self, bits: u64) -> f64 {
        if bits == 0 {
            return 0.0;
        }
        self.t_serdes_ns + bits as f64 / self.bandwidth_gbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simba_headline_energy() {
        let l = ChipletLink::simba();
        assert!((l.transfer_energy_pj(1) - 1.17).abs() < 1e-12);
    }

    #[test]
    fn link_cheaper_than_dram_but_not_free() {
        let l = ChipletLink::simba();
        let d = crate::dram::DramModel::lpddr4();
        assert!(l.e_pj_per_bit < d.e_pj_per_bit);
        assert!(l.e_pj_per_bit > 0.1);
    }

    #[test]
    fn latency_includes_serdes() {
        let l = ChipletLink::simba();
        assert_eq!(l.transfer_latency_ns(0), 0.0);
        assert!(l.transfer_latency_ns(1) >= l.t_serdes_ns);
        let t = l.transfer_latency_ns(200_000);
        assert!((t - (20.0 + 200_000.0 / 200.0)).abs() < 1.0);
    }
}
