//! # yoloc
//!
//! Facade crate for the YOLoC (DAC 2022) reproduction. Re-exports every
//! sub-crate of the workspace under one roof so examples, integration tests
//! and downstream users can depend on a single crate.
//!
//! See the workspace `README.md` for an architecture overview and
//! `DESIGN.md` for the per-experiment index.
//!
//! # Examples
//!
//! ```
//! // The paper's Table I macro specification, computed from circuit
//! // parameters rather than hard-coded.
//! let spec = yoloc::cim::macro_model::MacroParams::rom_paper().spec();
//! assert!(spec.density_mb_per_mm2 > 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use yoloc_cim as cim;
pub use yoloc_core as core;
pub use yoloc_data as data;
pub use yoloc_memory as memory;
pub use yoloc_models as models;
pub use yoloc_quant as quant;
pub use yoloc_tensor as tensor;
