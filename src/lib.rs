//! # yoloc
//!
//! Facade crate for the YOLoC (DAC 2022) reproduction. Re-exports every
//! sub-crate of the workspace under one roof so examples, integration tests
//! and downstream users can depend on a single crate.
//!
//! See the workspace `ARCHITECTURE.md` for the crate map and dataflow and
//! `README.md` for the per-experiment index.
//!
//! # Examples
//!
//! ```
//! // The paper's Table I macro specification, computed from circuit
//! // parameters rather than hard-coded.
//! let spec = yoloc::cim::macro_model::MacroParams::rom_paper().spec();
//! assert!(spec.density_mb_per_mm2 > 4.0);
//! ```
//!
//! Deploying a model onto the CiM simulator and running the batched
//! inference engine end to end:
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use yoloc::cim::MacroParams;
//! use yoloc::core::engine::WorkerPool;
//! use yoloc::core::pipeline::CimDeployedModel;
//! use yoloc::core::tiny_models::{Family, TinyCnn};
//! use yoloc::tensor::Tensor;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = TinyCnn::plain(Family::Vgg, 3, &[4], 2, &mut rng);
//! let x = Tensor::rand_uniform(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
//! let deployed = CimDeployedModel::deploy(
//!     &model,
//!     &x,
//!     MacroParams::rom_paper(),
//!     MacroParams::sram_paper(),
//! );
//! // Serial walk and pooled batched engine are bit-identical on the
//! // (noiseless) paper datapath.
//! let (serial, _) = deployed.infer(&x, &mut rng);
//! let (batched, _) = WorkerPool::with(2, |pool| deployed.infer_batch(&x, 1, pool));
//! assert_eq!(serial.data(), batched.data());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use yoloc_cim as cim;
pub use yoloc_core as core;
pub use yoloc_data as data;
pub use yoloc_memory as memory;
pub use yoloc_models as models;
pub use yoloc_quant as quant;
pub use yoloc_tensor as tensor;
