//! Shared helpers for the integration suites: the training-budget
//! switch below, plus the zoo-compile helpers of the parity suites in
//! [`zoo`].
//!
//! The default tier-1 run (`cargo test -q`) uses reduced training budgets
//! so the whole suite finishes in well under a minute; setting
//! `YOLOC_FULL_TRAIN=1` restores the original full budgets (and the
//! tighter accuracy thresholds that go with them) for paper-fidelity
//! runs:
//!
//! ```sh
//! YOLOC_FULL_TRAIN=1 cargo test -q
//! ```

pub mod zoo;

/// Whether the full training budgets were requested via the
/// `YOLOC_FULL_TRAIN=1` environment variable.
#[allow(dead_code)]
pub fn full_train() -> bool {
    std::env::var("YOLOC_FULL_TRAIN")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Picks the `full` value under `YOLOC_FULL_TRAIN=1` and the reduced
/// `smoke` value otherwise.
#[allow(dead_code)]
pub fn budget<T>(full: T, smoke: T) -> T {
    if full_train() {
        full
    } else {
        smoke
    }
}
