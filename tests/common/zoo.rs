//! Shared zoo-compile helpers for the parity-style suites
//! (`arena_parity`, `scheduler_parity`, `plan_roundtrip`,
//! `serve_parity`): one copy of the mapping-strategy sweep, the fixed
//! representative graphs, and the compile-or-panic boilerplate.
//!
//! Each suite only links the helpers it calls, so everything here is
//! `allow(dead_code)` to survive `clippy -D warnings` in every binary.
#![allow(dead_code)]

use yoloc::core::compiler::{CompileOptions, CompiledNetwork};
use yoloc::core::mapping::MappingStrategy;
use yoloc::models::{zoo, NetworkDesc};

/// Worker counts the parity suites sweep the pool across.
pub const WORKER_SWEEP: [usize; 3] = [1, 2, 8];

/// All three mapping strategies, in sweep order.
pub fn strategies() -> [MappingStrategy; 3] {
    [
        MappingStrategy::Naive,
        MappingStrategy::Packed,
        MappingStrategy::Sharded { chips: 3 },
    ]
}

/// The fixed representative graphs every parity suite pins:
/// feed-forward (VGG), residual with projections (ResNet), passthrough
/// detection head (YOLO).
pub fn named_zoo_nets() -> [NetworkDesc; 3] {
    [
        zoo::scaled(&zoo::vgg8(3), 16, (16, 16)),
        zoo::scaled(&zoo::resnet18(3), 16, (32, 32)),
        zoo::scaled(&zoo::yolo_v2(4, 2), 32, (64, 64)),
    ]
}

/// Compiles `desc` with the paper-default pipeline under `strategy`,
/// panicking with the network's name on failure.
pub fn compile(desc: &NetworkDesc, seed: u64, strategy: MappingStrategy) -> CompiledNetwork {
    let mut opts = CompileOptions::paper_default();
    opts.mapping = strategy;
    CompiledNetwork::compile_random(desc, seed, opts)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", desc.name))
}
