//! Fault-injection parity suite.
//!
//! Pins the three contracts of deterministic fault injection across
//! the whole compile/execute stack:
//!
//! 1. **Zero faults change nothing**: compiling with a `FaultConfig`
//!    whose spec is `FaultSpec::none()` produces bit-identical logits,
//!    `MvmStats` and `ExecutionReport` to the pristine compile, under
//!    every mapping strategy — the fault machinery is free until a
//!    fault actually fires.
//! 2. **Faults are deterministic and tier-consistent**: the same seed
//!    corrupts the same way twice, and the staged kernel path agrees
//!    bit-for-bit with the scalar analog oracle (`set_fast_path(false)`)
//!    on the *faulted* deployment. `ci.sh` re-runs this suite under
//!    forced `YOLOC_KERNEL` tiers, so every SIMD tier is held to the
//!    same oracle.
//! 3. **Faulted plans round-trip**: serialize → deserialize preserves
//!    the fault map, the per-layer fault records, and bit-identical
//!    execution; `remap_faults` moves hit placements onto spares
//!    without disturbing healthy layers.

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc::cim::FaultSpec;
use yoloc::core::compiler::{CompileOptions, CompiledNetwork, FaultConfig};
use yoloc::core::mapping::MappingStrategy;
use yoloc::models::NetworkDesc;
use yoloc::tensor::Tensor;

mod common;
use common::zoo::{compile, named_zoo_nets, strategies};

const SEED: u64 = 21;

fn compile_faulted(
    desc: &NetworkDesc,
    strategy: MappingStrategy,
    faults: FaultConfig,
) -> CompiledNetwork {
    let mut opts = CompileOptions::paper_default();
    opts.mapping = strategy;
    opts.faults = Some(faults);
    CompiledNetwork::compile_random(desc, SEED, opts)
        .unwrap_or_else(|e| panic!("{}: faulted compile failed: {e}", desc.name))
}

fn infer(net: &CompiledNetwork, input_seed: u64) -> (Vec<f32>, yoloc::core::ExecutionReport) {
    let (c, h, w) = net.input_shape();
    let x = Tensor::rand_uniform(
        &[1, c, h, w],
        0.0,
        1.0,
        &mut StdRng::seed_from_u64(input_seed),
    );
    let mut rng = StdRng::seed_from_u64(17);
    let (y, report) = net.infer(&x, &mut rng);
    (y.data().to_vec(), report)
}

/// A spec that exercises every fault class at rates high enough to hit
/// a small fabric deterministically.
fn lively_spec() -> FaultSpec {
    FaultSpec {
        stuck_rate: 0.02,
        dead_subarray_rate: 0.10,
        adc_fault_rate: 0.05,
        ..FaultSpec::uniform(5, 0.0)
    }
}

#[test]
fn zero_fault_config_is_bit_identical_to_pristine_compile() {
    let descs = named_zoo_nets();
    for desc in &descs[..2] {
        for strategy in strategies() {
            let pristine = compile(desc, SEED, strategy);
            let guarded = compile_faulted(desc, strategy, FaultConfig::sized(FaultSpec::none(), 4));
            let fm = guarded
                .fault_map
                .as_ref()
                .expect("fault-aware compile records a fault map");
            assert!(fm.dead.is_empty(), "{}: no faults, no deaths", desc.name);
            assert_eq!(fm.spare, 4);
            let (y_p, r_p) = infer(&pristine, 3);
            let (y_g, r_g) = infer(&guarded, 3);
            assert_eq!(
                y_p, y_g,
                "{}/{strategy:?}: zero-fault logits diverged",
                desc.name
            );
            assert_eq!(
                r_p, r_g,
                "{}/{strategy:?}: zero-fault report diverged",
                desc.name
            );
        }
    }
}

#[test]
fn faulted_deployments_are_deterministic_and_oracle_consistent() {
    let descs = named_zoo_nets();
    for desc in &descs[..2] {
        for strategy in strategies() {
            let clean = compile(desc, SEED, strategy);
            let faulted = compile_faulted(desc, strategy, FaultConfig::sized(lively_spec(), 4));
            let (y_clean, _) = infer(&clean, 3);
            let (y_fault, r_fault) = infer(&faulted, 3);
            assert_ne!(
                y_clean, y_fault,
                "{}/{strategy:?}: lively faults must corrupt the logits",
                desc.name
            );
            // Same seed, same corruption: a twin compile reproduces the
            // faulted outputs bit-for-bit.
            let twin = compile_faulted(desc, strategy, FaultConfig::sized(lively_spec(), 4));
            let (y_twin, r_twin) = infer(&twin, 3);
            assert_eq!(y_fault, y_twin, "{}/{strategy:?}", desc.name);
            assert_eq!(r_fault, r_twin, "{}/{strategy:?}", desc.name);
            // The staged kernel path (whatever tier the host resolved)
            // agrees with the scalar analog oracle on faulted hardware.
            let mut oracle = compile_faulted(desc, strategy, FaultConfig::sized(lively_spec(), 4));
            oracle.set_fast_path(false);
            let (y_oracle, _) = infer(&oracle, 3);
            assert_eq!(
                y_fault, y_oracle,
                "{}/{strategy:?}: kernel tier diverged from the analog oracle under faults",
                desc.name
            );
        }
    }
}

#[test]
fn faulted_plans_round_trip_bit_identically() {
    let desc = &named_zoo_nets()[0];
    let net = compile_faulted(
        desc,
        MappingStrategy::Naive,
        FaultConfig::sized(lively_spec(), 4),
    );
    let text = net.serialize_plan();
    assert!(text.contains("yoloc-plan/2"));
    let back = CompiledNetwork::deserialize_plan(&text).expect("faulted plan deserializes");
    assert_eq!(net.fault_map, back.fault_map, "fault map must survive");
    let (y_a, r_a) = infer(&net, 3);
    let (y_b, r_b) = infer(&back, 3);
    assert_eq!(y_a, y_b, "faulted logits diverged after round trip");
    assert_eq!(r_a, r_b, "faulted report diverged after round trip");
    assert_eq!(text, back.serialize_plan(), "document must be stable");
}

#[test]
fn remap_moves_dead_placements_onto_spares_without_collateral() {
    let desc = &named_zoo_nets()[0];
    // No random faults: every observable change must come from the
    // remap itself — and with healthy spares, there must be none.
    let mut net = compile_faulted(
        desc,
        MappingStrategy::Naive,
        FaultConfig::sized(FaultSpec::none(), 8),
    );
    let (y_before, r_before) = infer(&net, 3);
    let victim = net.mapping.placements[0]
        .subarray_ids
        .as_ref()
        .expect("fault-aware placements carry physical ids")[0];
    let affected = net.remap_faults(&[victim]).expect("spares available");
    assert!(
        affected.contains(&0),
        "the placement using the dead subarray must be remapped"
    );
    let fm = net.fault_map.as_ref().expect("fault map");
    assert!(fm.is_dead(victim), "the victim must be recorded dead");
    assert!(
        !net.mapping.placements[0]
            .subarray_ids
            .as_ref()
            .expect("ids")
            .contains(&victim),
        "the repaired placement must no longer use the dead subarray"
    );
    let (y_after, r_after) = infer(&net, 3);
    assert_eq!(
        y_before, y_after,
        "remap onto healthy spares must restore bit-identical outputs"
    );
    assert_eq!(r_before, r_after, "remap must not disturb the report");
}

#[test]
fn remap_under_stuck_faults_is_deterministic() {
    let desc = &named_zoo_nets()[0];
    let spec = FaultSpec {
        stuck_rate: 0.02,
        ..FaultSpec::uniform(5, 0.0)
    };
    let mut a = compile_faulted(desc, MappingStrategy::Naive, FaultConfig::sized(spec, 8));
    let mut b = compile_faulted(desc, MappingStrategy::Naive, FaultConfig::sized(spec, 8));
    let victim = a.mapping.placements[0].subarray_ids.as_ref().expect("ids")[0];
    let aff_a = a.remap_faults(&[victim]).expect("spares");
    let aff_b = b.remap_faults(&[victim]).expect("spares");
    assert_eq!(aff_a, aff_b, "remap must pick the same spares twice");
    let (y_a, r_a) = infer(&a, 3);
    let (y_b, r_b) = infer(&b, 3);
    assert_eq!(y_a, y_b, "post-remap execution must be deterministic");
    assert_eq!(r_a, r_b);
}
