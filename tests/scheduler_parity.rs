//! Fusion/scheduler parity suite: the optimizing pass pipeline plus the
//! tile-parallel scheduler must be **bit-identical** — logits *and*
//! `MvmStats` — to the legacy serial walk (the same graph compiled with
//! `PassPipeline::none()` and run through the serial interpreter), across
//! random zoo graphs, worker counts 1/2/8 and all three mapping
//! strategies.
//!
//! This is the acceptance gate of the pass-based-compiler refactor: every
//! optimization (epilogue fusion, dead-op elimination, arena planning,
//! tile partitioning, chiplet sharding) is required to be *scheduling*,
//! never *arithmetic*.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc::core::compiler::{CompileOptions, CompiledNetwork, PassPipeline};
use yoloc::core::engine::WorkerPool;
use yoloc::core::mapping::MappingStrategy;
use yoloc::models::zoo;
use yoloc::tensor::Tensor;

mod common;
use common::zoo::{named_zoo_nets, strategies, WORKER_SWEEP};

/// Compiles `desc` twice — legacy oracle (no passes) and fully optimized —
/// and checks that serial-legacy, serial-fused and tiled-fused execution
/// agree bit-for-bit in logits and per-domain `MvmStats` at every worker
/// count.
fn assert_parity(desc: &yoloc::models::NetworkDesc, seed: u64, strategy: MappingStrategy) {
    let mut legacy_opts = CompileOptions::paper_default();
    legacy_opts.mapping = strategy;
    legacy_opts.passes = PassPipeline::none();
    let mut fused_opts = CompileOptions::paper_default();
    fused_opts.mapping = strategy;

    let legacy = CompiledNetwork::compile_random(desc, seed, legacy_opts)
        .unwrap_or_else(|e| panic!("{}: legacy compile failed: {e}", desc.name));
    let fused = CompiledNetwork::compile_random(desc, seed, fused_opts)
        .unwrap_or_else(|e| panic!("{}: fused compile failed: {e}", desc.name));

    let (c, h, w) = legacy.input_shape();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let x = Tensor::rand_uniform(&[1, c, h, w], 0.0, 1.0, &mut rng);

    let (logits_legacy, report_legacy) = legacy.infer(&x, &mut rng);
    let (logits_fused, report_fused) = fused.infer(&x, &mut rng);
    assert_eq!(
        logits_legacy.data(),
        logits_fused.data(),
        "{}: fusion changed the logits",
        desc.name
    );
    assert_eq!(
        (report_legacy.rom, report_legacy.sram),
        (report_fused.rom, report_fused.sram),
        "{}: fusion changed the MvmStats",
        desc.name
    );
    // Fusion must not *increase* cache traffic (strictly decreases
    // whenever an epilogue folded).
    assert!(report_fused.buffer_traffic_bits <= report_legacy.buffer_traffic_bits);

    for workers in WORKER_SWEEP {
        let (logits_tiled, report_tiled) =
            WorkerPool::with(workers, |pool| fused.infer_tiled(&x, seed, pool));
        assert_eq!(
            logits_legacy.data(),
            logits_tiled.data(),
            "{}: tiled logits diverged at {workers} workers",
            desc.name
        );
        assert_eq!(
            (report_legacy.rom, report_legacy.sram),
            (report_tiled.rom, report_tiled.sram),
            "{}: tiled MvmStats diverged at {workers} workers",
            desc.name
        );
        // Against the *fused serial* interpreter the whole report must
        // match, energy floats and per-op latencies included.
        assert_eq!(
            report_fused, report_tiled,
            "{}: tiled report diverged from the serial interpreter at {workers} workers",
            desc.name
        );
    }
}

#[test]
fn named_zoo_networks_hold_parity_across_all_strategies() {
    for desc in &named_zoo_nets() {
        for strategy in strategies() {
            assert_parity(desc, 41, strategy);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_random_zoo_graphs_hold_parity(seed in 0u64..100_000) {
        // Random shape-consistent graphs (convs, activations, pooling,
        // plain and projected residuals, linear heads); the mapping
        // strategy rotates with the seed so the sweep covers all three.
        let desc = zoo::random_zoo(seed);
        let strategy = strategies()[(seed % 3) as usize];
        assert_parity(&desc, seed, strategy);
    }
}
