//! Integration: the headline system-level claims of the paper, asserted
//! as *shapes* (who wins, roughly by how much) on the full-size models.

use yoloc::cim::MacroParams;
use yoloc::core::system::{evaluate, SystemKind, SystemParams};
use yoloc::models::zoo;

fn iso_area(p: &SystemParams) -> f64 {
    let yolo = evaluate(&zoo::yolo_v2(20, 5), SystemKind::Yoloc, p).unwrap();
    yolo.area.total_mm2() - yolo.area.buffer_mm2
}

#[test]
fn table1_headline_numbers() {
    let spec = MacroParams::rom_paper().spec();
    assert!((spec.macro_size_mb - 1.2).abs() < 0.05);
    assert!((spec.density_mb_per_mm2 - 5.0).abs() < 0.2);
    assert!((spec.throughput_gops - 28.8).abs() < 0.2);
    assert!((spec.energy_efficiency_tops_w - 11.5).abs() < 0.2);
    let sram = MacroParams::sram_paper().spec();
    let ratio = spec.density_mb_per_mm2 / sram.density_mb_per_mm2;
    assert!((17.0..22.0).contains(&ratio), "density ratio {ratio}");
}

#[test]
fn fig14_improvement_ordering() {
    let p = SystemParams::paper_default();
    let iso = iso_area(&p);
    let imp = |net: &yoloc::models::NetworkDesc| {
        let y = evaluate(net, SystemKind::Yoloc, &p).unwrap();
        let s = evaluate(
            net,
            SystemKind::SramSingleChip {
                cim_area_mm2: Some(iso),
            },
            &p,
        )
        .unwrap();
        y.energy_eff_tops_w / s.energy_eff_tops_w
    };
    let vgg = imp(&zoo::vgg8(100));
    let resnet = imp(&zoo::resnet18(100));
    let tiny = imp(&zoo::tiny_yolo(20, 5));
    let yolo = imp(&zoo::yolo_v2(20, 5));
    // Paper: 1x / 4.8x / 10.2x / 14.8x. Shape: VGG-8 near parity, every
    // model that spills gains severalfold.
    assert!((0.7..1.6).contains(&vgg), "vgg {vgg}");
    assert!(resnet > 3.0, "resnet {resnet}");
    assert!(tiny > 3.0, "tiny {tiny}");
    assert!(yolo > 3.0, "yolo {yolo}");
    assert!(
        vgg < resnet.min(tiny).min(yolo),
        "small model must gain least"
    );
}

#[test]
fn fig14_chiplet_parity_and_area() {
    let p = SystemParams::paper_default();
    let net = zoo::yolo_v2(20, 5);
    let y = evaluate(&net, SystemKind::Yoloc, &p).unwrap();
    let c = evaluate(&net, SystemKind::SramChiplet { chips: None }, &p).unwrap();
    // Paper: energy parity within a few percent, ~10x area saving.
    let e = y.energy_eff_tops_w / c.energy_eff_tops_w;
    assert!((0.85..1.25).contains(&e), "energy ratio {e}");
    let a = c.area.total_mm2() / y.area.total_mm2();
    assert!((5.0..15.0).contains(&a), "area ratio {a}");
}

#[test]
fn fig12_chip_area_ratios() {
    // Paper: all-weights-fit SRAM-CiM YOLO chip is 9.7x the YOLoC chip;
    // Tiny-YOLO's is 2.4x.
    let p = SystemParams::paper_default();
    let yoloc = evaluate(&zoo::yolo_v2(20, 5), SystemKind::Yoloc, &p).unwrap();
    let sram_density = p.sram.spec().density_mb_per_mm2;
    let fit = |bits: u64| bits as f64 / 1_048_576.0 / sram_density;
    let yolo_fit = fit(zoo::yolo_v2(20, 5).weight_bits(8));
    let tiny_fit = fit(zoo::tiny_yolo(20, 5).weight_bits(8));
    let r_yolo = yolo_fit / yoloc.area.total_mm2();
    let r_tiny = tiny_fit / yoloc.area.total_mm2();
    assert!((5.0..14.0).contains(&r_yolo), "yolo fit ratio {r_yolo}");
    assert!((1.5..5.0).contains(&r_tiny), "tiny fit ratio {r_tiny}");
    assert!(r_yolo > r_tiny);
}

#[test]
fn rebranch_latency_overhead_near_paper() {
    let p = SystemParams::paper_default();
    let net = zoo::yolo_v2(20, 5);
    let with = evaluate(&net, SystemKind::Yoloc, &p).unwrap();
    let mut p0 = p.clone();
    p0.branch_overlap = 0.0;
    let without = evaluate(&net, SystemKind::Yoloc, &p0).unwrap();
    let overhead = with.latency_ms / without.latency_ms - 1.0;
    assert!((0.03..0.13).contains(&overhead), "overhead {overhead}");
}

#[test]
fn yoloc_stores_over_90pct_in_rom() {
    // Paper §3.3: "Over 90% of parameters are stored in the high-density
    // ROM-CiM."
    let p = SystemParams::paper_default();
    let y = evaluate(&zoo::yolo_v2(20, 5), SystemKind::Yoloc, &p).unwrap();
    // ROM cell area / total array area is a proxy for the bit split at
    // fixed cell sizes.
    let rom_bits_area = y.area.rom_array_mm2 / MacroParams::rom_paper().cell.area_um2();
    let sram_bits_area = y.area.sram_array_mm2 / MacroParams::sram_paper().cell.area_um2();
    let rom_share = rom_bits_area / (rom_bits_area + sram_bits_area);
    assert!(rom_share > 0.9, "ROM bit share {rom_share}");
}
