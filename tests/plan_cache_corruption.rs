//! Plan-cache corruption suite: damaged on-disk cache entries must
//! degrade to a *clean miss* (recompile + overwrite), never to a
//! silently wrong deployment. JSON survives many single-bit flips as
//! perfectly parseable text, so the cache frames every entry with a
//! checksum line — this suite drives truncation, bit flips, wrong
//! schemas, empty files and stale unframed entries through a real disk
//! cache and checks every one recompiles to the same plan bytes.

use std::fs;
use std::path::PathBuf;

use yoloc::core::compiler::cache::PlanCache;
use yoloc::core::compiler::{CompileOptions, CompiledNetwork};
use yoloc::models::zoo;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "yoloc-cache-corruption-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Seeds a cache directory with one valid entry and returns the
/// directory, the entry's path, and the plan bytes it deploys to.
fn seeded_cache(tag: &str) -> (PathBuf, PathBuf, String) {
    let dir = tmp_dir(tag);
    let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
    let cache = PlanCache::at(&dir);
    let net = cache
        .compile_random(&desc, 21, CompileOptions::paper_default())
        .expect("cold compile");
    let entry = fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("one cache entry written");
    (dir, entry, net.serialize_plan())
}

/// Asserts a fresh cache on `dir` treats the (damaged) entry as a miss,
/// recompiles, and ends up serving the original plan again.
fn assert_clean_miss(dir: &PathBuf, expected_plan: &str, what: &str) {
    let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
    let cache = PlanCache::at(dir);
    let net = cache
        .compile_random(&desc, 21, CompileOptions::paper_default())
        .unwrap_or_else(|e| panic!("{what}: deploy must survive damage: {e}"));
    assert_eq!(
        (cache.hits(), cache.misses()),
        (0, 1),
        "{what}: damaged entry must be a miss, not a hit"
    );
    assert_eq!(
        net.serialize_plan(),
        expected_plan,
        "{what}: recompile must restore the exact plan"
    );
    // The overwritten entry is healthy again: next deploy hits.
    let again = PlanCache::at(dir);
    again
        .compile_random(&desc, 21, CompileOptions::paper_default())
        .expect("healed entry");
    assert_eq!(
        (again.hits(), again.misses()),
        (1, 0),
        "{what}: overwritten entry must serve hits"
    );
}

#[test]
fn truncated_entry_is_a_clean_miss() {
    let (dir, entry, plan) = seeded_cache("trunc");
    let raw = fs::read_to_string(&entry).unwrap();
    fs::write(&entry, &raw[..raw.len() / 2]).unwrap();
    assert_clean_miss(&dir, &plan, "truncated");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_entries_are_clean_misses() {
    // Flip one bit at several positions spread across the document —
    // including deep in the body where the text stays valid JSON.
    let (dir, entry, plan) = seeded_cache("flip");
    let pristine = fs::read(&entry).unwrap();
    let step = (pristine.len() / 7).max(1);
    for i in 0..7 {
        let pos = (17 + i * step) % pristine.len();
        let mut bytes = pristine.clone();
        bytes[pos] ^= 1 << (i % 8);
        fs::write(&entry, &bytes).unwrap();
        assert_clean_miss(&dir, &plan, &format!("bit flip at byte {pos}"));
        // Restore the damaged file for the next flip (assert_clean_miss
        // heals it, so re-damage from the pristine copy).
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn wrong_schema_entry_is_a_clean_miss() {
    let (dir, entry, plan) = seeded_cache("schema");
    let raw = fs::read_to_string(&entry).unwrap();
    let (_, body) = raw.split_once('\n').expect("framed entry");
    let stale = body.replace("yoloc-plan/2", "yoloc-plan/99");
    // Re-frame with a *valid* checksum: schema rejection must work even
    // when the bytes are intact (a genuinely stale format, not damage).
    let sum = {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in stale.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    };
    fs::write(&entry, format!("{sum:016x}\n{stale}")).unwrap();
    assert_clean_miss(&dir, &plan, "wrong schema");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn empty_and_garbage_entries_are_clean_misses() {
    let (dir, entry, plan) = seeded_cache("empty");
    fs::write(&entry, "").unwrap();
    assert_clean_miss(&dir, &plan, "empty file");
    fs::write(&entry, b"\x00\xff\x00garbage\n\n{{{").unwrap();
    assert_clean_miss(&dir, &plan, "binary garbage");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unframed_legacy_entry_is_a_clean_miss() {
    // A pre-checksum cache file is the bare document with no checksum
    // line — the frame decoder must invalidate it rather than trust it.
    let (dir, entry, plan) = seeded_cache("legacy");
    let raw = fs::read_to_string(&entry).unwrap();
    let (_, body) = raw.split_once('\n').expect("framed entry");
    let body = body.to_string();
    fs::write(&entry, body).unwrap();
    assert_clean_miss(&dir, &plan, "unframed legacy entry");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn deserializer_rejects_what_the_checksum_cannot_see() {
    // Defense in depth: hand the deserializer a checksum-valid document
    // with an internally inconsistent shape; it must error, not build a
    // broken network.
    let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
    let net = CompiledNetwork::compile_random(&desc, 21, CompileOptions::paper_default())
        .expect("compiles");
    let text = net.serialize_plan();
    let bad = text.replace("\"n_chips\": 1", "\"n_chips\": \"one\"");
    assert_ne!(text, bad, "mutation must apply");
    assert!(CompiledNetwork::deserialize_plan(&bad).is_err());
}
