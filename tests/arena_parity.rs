//! Arena-executor parity suite: the zero-allocation arena interpreter
//! must be **bit-identical** — logits, `MvmStats`, and the full
//! `ExecutionReport` — to the clone-based oracle
//! (`ExecPlan::execute_cloned`), serially and through the tile-parallel
//! scheduler, across random zoo graphs, worker counts 1/2/8 and all
//! three mapping strategies.
//!
//! This is the acceptance gate of the arena-runtime refactor: running on
//! pre-materialized slot buffers instead of per-op tensor clones — and
//! batching the MVM kernel one block at a time instead of one window at
//! a time — is required to be *memory management*, never *arithmetic*.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc::core::engine::WorkerPool;
use yoloc::core::mapping::MappingStrategy;
use yoloc::models::zoo;
use yoloc::tensor::Tensor;

mod common;
use common::zoo::{compile, named_zoo_nets, strategies, WORKER_SWEEP};

/// Compiles `desc` once with the full pipeline and checks that the
/// clone-based oracle, the arena interpreter (both the pooled `infer`
/// path and an explicit reused arena), the batched engine and the tiled
/// scheduler all agree bit for bit on the same plan.
fn assert_arena_parity(desc: &yoloc::models::NetworkDesc, seed: u64, strategy: MappingStrategy) {
    let net = compile(desc, seed, strategy);

    let (c, h, w) = net.input_shape();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00A1_2E7A);
    let x = Tensor::rand_uniform(&[1, c, h, w], 0.0, 1.0, &mut rng);

    // The clone-based oracle on the *same* plan.
    let (logits_oracle, report_oracle) = net.plan().execute_cloned(&x, &mut rng);
    // The arena path behind the default `infer`.
    let (logits_arena, report_arena) = net.infer(&x, &mut rng);
    assert_eq!(
        logits_oracle.data(),
        logits_arena.data(),
        "{}: arena execution changed the logits",
        desc.name
    );
    assert_eq!(
        report_oracle, report_arena,
        "{}: arena execution changed the report",
        desc.name
    );

    // An explicitly reused arena: repeated inference through the same
    // buffers must stay bit-stable call after call.
    let mut arena = net.take_arena();
    for call in 0..3 {
        let (y, r) = net.infer_in(&x, &mut rng, &mut arena);
        assert_eq!(
            logits_oracle.data(),
            y.data(),
            "{}: reused arena diverged on call {call}",
            desc.name
        );
        assert_eq!(
            &report_oracle, r,
            "{}: reused arena report diverged on call {call}",
            desc.name
        );
    }
    net.give_arena(arena);

    // Tiled scheduler on the arena-planned network.
    for workers in WORKER_SWEEP {
        let (logits_tiled, report_tiled) =
            WorkerPool::with(workers, |pool| net.infer_tiled(&x, seed, pool));
        assert_eq!(
            logits_oracle.data(),
            logits_tiled.data(),
            "{}: tiled logits diverged at {workers} workers",
            desc.name
        );
        assert_eq!(
            report_oracle, report_tiled,
            "{}: tiled report diverged at {workers} workers",
            desc.name
        );
    }

    // Batched execution recycles arenas across samples; a 3-sample batch
    // of the same input must reduce to 3x the single-sample stats.
    let mut batch_data = Vec::new();
    for _ in 0..3 {
        batch_data.extend_from_slice(x.data());
    }
    let xb = Tensor::from_vec(batch_data, &[3, c, h, w]).unwrap();
    let (logits_batch, report_batch) = WorkerPool::with(2, |pool| net.infer_batch(&xb, seed, pool));
    for s in 0..3 {
        let n = logits_oracle.data().len();
        assert_eq!(
            logits_oracle.data(),
            &logits_batch.data()[s * n..(s + 1) * n],
            "{}: batched sample {s} diverged",
            desc.name
        );
    }
    assert_eq!(
        report_oracle.rom.analog_evaluations * 3,
        report_batch.rom.analog_evaluations,
        "{}: batched stats lost samples",
        desc.name
    );
}

#[test]
fn kernel_override_is_honored_across_the_arena_suite() {
    // ci.sh re-runs this whole suite under `YOLOC_KERNEL=scalar` and
    // `YOLOC_KERNEL=avx2`: every engine programmed by the other tests
    // resolves its kernel tier from that override at `program` time, so
    // the parity assertions above pin each tier end to end. This test
    // makes the override's resolution visible and skips-with-a-note when
    // AVX2 is requested on a host without it (the suite then still runs,
    // on the downgraded scalar tier).
    use yoloc::cim::{avx2_available, KernelDispatch, KernelKind};
    let requested = std::env::var("YOLOC_KERNEL").unwrap_or_default();
    let resolved = KernelDispatch::from_env().resolve();
    if requested == "avx2" && !avx2_available() {
        eprintln!(
            "note: YOLOC_KERNEL=avx2 requested but this host lacks AVX2; \
             arena parity suite runs on the scalar tier instead"
        );
        assert_eq!(resolved, KernelKind::Scalar);
        return;
    }
    match requested.as_str() {
        "scalar" => assert_eq!(resolved, KernelKind::Scalar),
        "avx2" => assert_eq!(resolved, KernelKind::Avx2),
        _ => {} // auto (or unset): host-dependent, both tiers valid
    }
    // One pinned end-to-end case under the active tier, beyond the
    // seed-swept coverage of the other tests in this file.
    assert_arena_parity(&named_zoo_nets()[0], 7, strategies()[0]);
}

#[test]
fn named_zoo_networks_hold_arena_parity_across_all_strategies() {
    for desc in &named_zoo_nets() {
        for strategy in strategies() {
            assert_arena_parity(desc, 23, strategy);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_random_zoo_graphs_hold_arena_parity(seed in 0u64..100_000) {
        // Random shape-consistent graphs (convs, activations, pooling,
        // plain and projected residuals, linear heads); the mapping
        // strategy rotates with the seed so the sweep covers all three.
        let desc = zoo::random_zoo(seed);
        let strategy = strategies()[(seed % 3) as usize];
        assert_arena_parity(&desc, seed, strategy);
    }
}
