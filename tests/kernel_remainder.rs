//! Remainder-lane kernel parity suite (tier-3 acceptance gate): every
//! kernel tier the host can execute, in **both** batch layouts, must be
//! bit-identical to the scalar row-major reference — in values *and*
//! `MvmStats` — at shapes that are deliberately not multiples of any
//! SIMD lane width (1, 2, 3, 9, 17, 31) across batch sizes 1..=33.
//!
//! These shapes pin every tail path: the AVX2 8-lane and AVX-512
//! 16-lane panel remainders, the `i16` madd half-register tail, the
//! popcount plane padding (4 vs 8 staged vectors), and the quad-column
//! remainder of the blocked matmuls. The overdriven-ADC variant forces
//! the pulse mask-stream path, and the noisy variant checks the
//! per-vector analog fallback consumes its RNG stream identically
//! through the transposed entry.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use yoloc::cim::backend::{program_backend, BackendKind, MvmScratch};
use yoloc::cim::kernels::{available_kinds, transposed_pad, KernelKind};
use yoloc::cim::{MacroParams, MvmStats};

/// Dimensions that are not a multiple of any lane width in play
/// (4, 8, 16 and 32 all miss every value except via the 1/2-aliasing
/// the padding logic must absorb).
const ODD_DIMS: [usize; 6] = [1, 2, 3, 9, 17, 31];

fn seeded_matrix(outs: usize, ins: usize, seed: u64) -> Vec<i32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..outs * ins).map(|_| rng.gen_range(-128..=127)).collect()
}

fn seeded_acts(n: usize, ins: usize, seed: u64) -> Vec<i32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_AC75);
    (0..n * ins).map(|_| rng.gen_range(0..=255)).collect()
}

/// Stages `acts` (vector-major) as the lane-major transposed panel.
fn to_panel(acts: &[i32], n: usize, ins: usize) -> (Vec<i32>, usize) {
    let n_pad = transposed_pad(n);
    let mut acts_t = vec![0i32; ins * n_pad];
    for v in 0..n {
        for i in 0..ins {
            acts_t[i * n_pad + v] = acts[v * ins + i];
        }
    }
    (acts_t, n_pad)
}

/// Runs one backend at `(outs, ins, n)` under every available kernel
/// tier and both layouts, asserting each run reproduces the forced
/// scalar row-major golden result bit for bit from the same RNG seed.
fn assert_remainder_parity(params: MacroParams, outs: usize, ins: usize, n: usize, seed: u64) {
    let codes = seeded_matrix(outs, ins, seed);
    let acts = seeded_acts(n, ins, seed);
    let (acts_t, n_pad) = to_panel(&acts, n, ins);
    let mut b = program_backend(BackendKind::Popcount, params, &codes, outs, ins);
    let mut scratch = MvmScratch::new();

    b.set_kernel(KernelKind::Scalar);
    let mut golden = vec![0i64; n * outs];
    let mut golden_stats = MvmStats::default();
    let mut rng = StdRng::seed_from_u64(seed);
    b.mvm_batch(
        &acts,
        n,
        &mut golden,
        &mut golden_stats,
        &mut scratch,
        &mut rng,
    );

    for kind in available_kinds() {
        b.set_kernel(kind);
        let mut out = vec![0i64; n * outs];
        let mut stats = MvmStats::default();
        let mut rng = StdRng::seed_from_u64(seed);
        b.mvm_batch(&acts, n, &mut out, &mut stats, &mut scratch, &mut rng);
        assert_eq!(
            out,
            golden,
            "{} row-major diverges at {outs}x{ins} n={n}",
            kind.label()
        );
        assert_eq!(
            stats,
            golden_stats,
            "{} row-major stats diverge at {outs}x{ins} n={n}",
            kind.label()
        );

        let mut out_t = vec![0i64; n * outs];
        let mut stats_t = MvmStats::default();
        let mut rng = StdRng::seed_from_u64(seed);
        b.mvm_batch_transposed(
            &acts_t,
            n,
            n_pad,
            &mut out_t,
            &mut stats_t,
            &mut scratch,
            &mut rng,
        );
        assert_eq!(
            out_t,
            golden,
            "{} transposed diverges at {outs}x{ins} n={n}",
            kind.label()
        );
        assert_eq!(
            stats_t,
            golden_stats,
            "{} transposed stats diverge at {outs}x{ins} n={n}",
            kind.label()
        );
    }
}

#[test]
fn remainder_shapes_hold_parity_on_the_exact_path() {
    // Paper design point: identity ADC, so the exact matmul (madd /
    // mullo tails included) carries the batch. Full cross of the odd
    // dimensions; batch sizes sweep every panel-tail residue mod 16.
    let params = MacroParams::rom_paper();
    for &outs in &ODD_DIMS {
        for &ins in &ODD_DIMS {
            for n in 1..=33 {
                assert_remainder_parity(params, outs, ins, n, 0xD1 + n as u64);
            }
        }
    }
}

#[test]
fn remainder_shapes_hold_parity_under_adc_quantization() {
    // Overdriven rows (full scale >> 31 ADC levels): the batch goes
    // down the pulse mask-stream path, whose plane padding differs by
    // tier (4 vs 8 staged vectors). Subset of the cross — this path is
    // an order of magnitude slower per call.
    let mut params = MacroParams::rom_paper();
    params.rows_per_activation = 32;
    for &(outs, ins) in &[(1, 9), (3, 17), (17, 31), (2, 2)] {
        for n in [1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33] {
            assert_remainder_parity(params, outs, ins, n, 0xADC + n as u64);
        }
    }
}

#[test]
fn remainder_shapes_hold_parity_on_the_noisy_fallback() {
    // Noise disables the fast path entirely: both batch entries must
    // fall back to the per-vector analog walk and consume the RNG
    // stream in the same vector order.
    let mut params = MacroParams::rom_paper();
    params.noise_sigma = 0.25;
    for &(outs, ins) in &[(2, 9), (3, 31), (17, 1)] {
        for n in [1, 4, 16, 33] {
            assert_remainder_parity(params, outs, ins, n, 0x0157 + n as u64);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_random_odd_shapes_hold_parity(seed in 0u64..100_000) {
        // Random draws over the odd-dimension grid with fresh random
        // codes and activations per case; rotates the ADC regime so the
        // sweep covers both the exact and the quantizing path.
        let mut rng = StdRng::seed_from_u64(seed);
        let outs = ODD_DIMS[rng.gen_range(0..ODD_DIMS.len())];
        let ins = ODD_DIMS[rng.gen_range(0..ODD_DIMS.len())];
        let n = rng.gen_range(1..=33usize);
        let mut params = MacroParams::rom_paper();
        if seed % 3 == 0 {
            params.rows_per_activation = 32;
        }
        assert_remainder_parity(params, outs, ins, n, seed);
    }
}
