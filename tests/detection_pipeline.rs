//! Integration: the detection transfer pipeline at smoke scale —
//! pretrain, strategy rebuild, transfer training, mAP evaluation.
//!
//! Training budgets are reduced by default; `YOLOC_FULL_TRAIN=1` restores
//! the full budgets and thresholds (see `tests/common/mod.rs`).

mod common;

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc::core::detector::{
    eval_map, pretrain_detector, train_detector, DetectionSuite, DetectorStrategy,
};
use yoloc::tensor::{Layer, LayerExt};

#[test]
fn detection_transfer_pipeline() {
    let seed = 321;
    let suite = DetectionSuite::new(seed);
    let base = pretrain_detector(&[10, 14, 18], &suite, common::budget(220, 110), seed);
    let task = &suite.voc_like;
    let mut rng = StdRng::seed_from_u64(seed + 1);

    // ReBranch transfer learns something real.
    let mut rb = base.with_strategy(
        DetectorStrategy::ReBranch { d: 2, u: 2 },
        task.classes,
        &mut rng,
    );
    let before = eval_map(&mut rb, task, common::budget(30, 20), &mut rng);
    train_detector(&mut rb, task, common::budget(320, 160), 14, 0.05, &mut rng);
    let after = eval_map(&mut rb, task, common::budget(40, 28), &mut rng);
    assert!(after > before, "mAP {before} -> {after}");
    // The reduced default budget clears a lower—but still far above
    // untrained—mAP floor.
    let floor = common::budget(0.18, 0.12);
    assert!(after > floor, "transfer mAP too low: {after}");

    // The frozen backbone really is frozen.
    let frozen_before: Vec<Vec<f32>> = rb
        .params()
        .iter()
        .filter(|p| p.frozen)
        .map(|p| p.value.data().to_vec())
        .collect();
    train_detector(&mut rb, task, 10, 8, 0.05, &mut rng);
    let frozen_after: Vec<Vec<f32>> = rb
        .params()
        .iter()
        .filter(|p| p.frozen)
        .map(|p| p.value.data().to_vec())
        .collect();
    assert_eq!(frozen_before, frozen_after);
}

#[test]
fn rebranch_trainable_fraction_matches_du() {
    let seed = 5;
    let suite = DetectionSuite::new(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let base = yoloc::core::detector::TinyYoloDetector::new(
        &[16, 24, 32],
        suite.coco_like.classes,
        &mut rng,
    );
    let rb = base.with_strategy(DetectorStrategy::ReBranch { d: 4, u: 4 }, 4, &mut rng);
    let trainable = rb.trainable_param_count() as f64;
    let total = rb.param_count() as f64;
    // Trainable = res-convs (~1/16 of trunks) + head; well under a third.
    assert!(trainable / total < 0.35, "fraction {}", trainable / total);
}
