//! Integration: the full CiM deployment pipeline — quantization →
//! bit-plane decomposition → analog macro → dequantization — against the
//! software reference, across crates.

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc::cim::macro_model::{reference_mvm, MacroParams, RomMvm};
use yoloc::core::qconv::CimConv2d;
use yoloc::tensor::ops::conv2d_reference;
use yoloc::tensor::Tensor;

#[test]
fn paper_design_point_is_bit_exact_on_large_matrices() {
    let mut rng = StdRng::seed_from_u64(42);
    let (outs, ins) = (48, 300); // multiple row and column tiles
    let codes: Vec<i32> = (0..outs * ins)
        .map(|i| ((i * 131) % 255) as i32 - 127)
        .collect();
    let acts: Vec<i32> = (0..ins).map(|i| ((i * 17) % 256) as i32).collect();
    let engine = RomMvm::program(MacroParams::rom_paper(), &codes, outs, ins);
    let (y, stats) = engine.mvm(&acts, &mut rng);
    assert_eq!(y, reference_mvm(&codes, outs, ins, &acts));
    assert!(stats.adc_conversions > 0);
}

#[test]
fn quantized_conv_through_macro_tracks_software() {
    let mut rng = StdRng::seed_from_u64(7);
    let w = Tensor::randn(&[6, 4, 3, 3], 0.0, 0.3, &mut rng);
    let x = Tensor::rand_uniform(&[2, 4, 8, 8], 0.0, 1.0, &mut rng);
    let conv = CimConv2d::compile(&w, 1, 1, &[&x], MacroParams::rom_paper());
    let (y, _) = conv.forward(&x, &mut rng);
    let expect = conv2d_reference(&x, &w, None, 1, 1);
    let mag = expect.abs_max().max(1e-6);
    let mut worst = 0.0f32;
    for (a, b) in y.data().iter().zip(expect.data()) {
        worst = worst.max((a - b).abs() / mag);
    }
    assert!(worst < 0.03, "relative error {worst}");
}

#[test]
fn analog_noise_injection_stays_bounded() {
    // Failure injection: with realistic bit-line noise the conv error
    // grows but remains usable — the macro does not fall off a cliff.
    let mut rng = StdRng::seed_from_u64(8);
    let w = Tensor::randn(&[6, 4, 3, 3], 0.0, 0.3, &mut rng);
    let x = Tensor::rand_uniform(&[1, 4, 8, 8], 0.0, 1.0, &mut rng);
    let mut noisy = MacroParams::rom_paper();
    noisy.noise_sigma = 0.5;
    let conv = CimConv2d::compile(&w, 1, 1, &[&x], noisy);
    let (y, _) = conv.forward(&x, &mut rng);
    let expect = conv2d_reference(&x, &w, None, 1, 1);
    let mag = expect.abs_max().max(1e-6);
    let mean_err: f32 = y
        .data()
        .iter()
        .zip(expect.data())
        .map(|(a, b)| (a - b).abs())
        .sum::<f32>()
        / y.len() as f32;
    assert!(
        mean_err / mag < 0.2,
        "mean relative error {}",
        mean_err / mag
    );
}

#[test]
fn adc_saturation_failure_mode_is_contained() {
    // Failure injection: overdrive the rows-per-activation beyond the ADC
    // range; the result is degraded but finite and roughly proportional.
    let mut rng = StdRng::seed_from_u64(9);
    let mut params = MacroParams::rom_paper();
    params.rows_per_activation = 64; // far beyond the 31-level ADC
    let (outs, ins) = (4, 128);
    let codes = vec![64i32; outs * ins];
    let acts = vec![128i32; ins];
    let engine = RomMvm::program(params, &codes, outs, ins);
    let (y, _) = engine.mvm(&acts, &mut rng);
    let exact = reference_mvm(&codes, outs, ins, &acts);
    for (a, b) in y.iter().zip(&exact) {
        let rel = (*a - *b).abs() as f64 / (*b).abs().max(1) as f64;
        assert!(rel < 1.0, "saturated output diverged: {a} vs {b}");
    }
}
