//! Serving-path parity suite: every request routed through the
//! continuous-batching [`Broker`] must produce logits and `MvmStats` —
//! in fact the full `ExecutionReport` — **bit-identical** to a direct
//! `CompiledNetwork::infer_in` on the same plan, across batch windows
//! 1/4/16, worker counts 1/2/8 and all three mapping strategies.
//!
//! This is the acceptance gate of the serving layer: admission queues,
//! batch windows, backpressure and round-robin tenancy are required to
//! be *scheduling*, never *arithmetic* — the brokered result may not
//! depend on which batch a request landed in or how many workers
//! executed it. The oracle reconstructs each request exactly as the
//! broker does: input from `Arrival::input_seed`, noise from
//! `sample_stream_seed(infer_seed, id)`.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc::core::engine::{sample_stream_seed, WorkerPool};
use yoloc::core::serve::{
    ArrivalPattern, Broker, BrokerConfig, LoadGen, TenantConfig, TrafficSpec, VirtualClock,
};
use yoloc::tensor::Tensor;

mod common;
use common::zoo::{named_zoo_nets, strategies, WORKER_SWEEP};

/// Whether CI asked for the reduced sweep (`YOLOC_SMOKE=1`).
fn smoke() -> bool {
    std::env::var_os("YOLOC_SMOKE").is_some_and(|v| v != "0")
}

const BATCH_SWEEP: [usize; 3] = [1, 4, 16];
const INFER_SEED: u64 = 0xB40C_CA57;

#[test]
fn brokered_requests_match_direct_inference_bit_for_bit() {
    // Smoke keeps one net and trims the sweep corners; the full run
    // covers all three graphs x 3 batch windows x 3 worker counts x 3
    // strategies.
    let nets = named_zoo_nets();
    let nets: &[_] = if smoke() { &nets[..1] } else { &nets[..] };
    let batches: &[usize] = if smoke() {
        &BATCH_SWEEP[..2]
    } else {
        &BATCH_SWEEP[..]
    };
    let worker_sweep: &[usize] = if smoke() {
        &WORKER_SWEEP[..2]
    } else {
        &WORKER_SWEEP[..]
    };
    for desc in nets {
        for strategy in strategies() {
            let net = common::zoo::compile(desc, 23, strategy);
            // The oracle runs each request directly, reconstructing the
            // broker's exact input tensor and noise stream from the
            // trace — then memoizes by id for the cross-config sweep.
            let (c, h, w) = net.input_shape();
            let mut oracle: HashMap<u64, (Vec<f32>, yoloc::core::compiler::ExecutionReport)> =
                HashMap::new();
            let trace = LoadGen::new(17).trace(
                &[TrafficSpec {
                    model: 0,
                    pattern: ArrivalPattern::Poisson {
                        rate_rps: 200_000.0,
                    },
                    deadline_ns: Some(5_000_000),
                }],
                if smoke() { 100_000 } else { 250_000 },
            );
            assert!(
                trace.len() >= 8,
                "{}: trace too small to exercise batching",
                desc.name
            );
            let mut arena = net.take_arena();
            for a in &trace {
                let x = Tensor::rand_uniform(
                    &[1, c, h, w],
                    0.0,
                    1.0,
                    &mut StdRng::seed_from_u64(a.input_seed),
                );
                let mut rng = StdRng::seed_from_u64(sample_stream_seed(INFER_SEED, a.id as usize));
                let (y, r) = net.infer_in(&x, &mut rng, &mut arena);
                oracle.insert(a.id, (y.data().to_vec(), r.clone()));
            }
            net.give_arena(arena);

            for &max_batch in batches {
                for &workers in worker_sweep {
                    let out = WorkerPool::with(workers, |pool| {
                        let mut broker = Broker::new(
                            VirtualClock::new(),
                            BrokerConfig {
                                infer_seed: INFER_SEED,
                                batch_overhead_ns: 20_000,
                                capture: true,
                                health: None,
                            },
                        );
                        broker.deploy(
                            &desc.name,
                            &net,
                            TenantConfig {
                                // Roomy queue: every request must complete
                                // so every capture has an oracle entry.
                                queue_cap: trace.len().max(1),
                                admission: yoloc::core::serve::AdmissionPolicy::RejectNew,
                                max_batch,
                                window_ns: 40_000,
                            },
                        );
                        broker.run(&trace, pool)
                    });
                    assert_eq!(
                        out.report.completed,
                        trace.len() as u64,
                        "{}: broker dropped requests (batch {max_batch}, {workers} workers)",
                        desc.name
                    );
                    assert_eq!(
                        out.captures.len(),
                        trace.len(),
                        "{}: capture count diverged",
                        desc.name
                    );
                    for cap in &out.captures {
                        let (logits, report) = &oracle[&cap.id];
                        assert_eq!(
                            logits, &cap.logits,
                            "{}: request {} logits diverged from direct inference \
                             (batch {max_batch}, {workers} workers, {strategy:?})",
                            desc.name, cap.id
                        );
                        assert_eq!(
                            (report.rom, report.sram),
                            (cap.exec.rom, cap.exec.sram),
                            "{}: request {} MvmStats diverged (batch {max_batch}, \
                             {workers} workers, {strategy:?})",
                            desc.name,
                            cap.id
                        );
                        assert_eq!(
                            report, &cap.exec,
                            "{}: request {} execution report diverged (batch {max_batch}, \
                             {workers} workers, {strategy:?})",
                            desc.name, cap.id
                        );
                    }
                }
            }
        }
    }
}
