//! Chaos simulation suite: deterministic fault injection against the
//! serving layer, end to end.
//!
//! The scenario compiles one pristine deployment plus a *faulty twin*
//! (the same description compiled with a lively `FaultConfig`, so its
//! inferences are genuinely corrupt), then injects the twin into a
//! health-monitored [`Broker`] mid-trace. The suite pins the full
//! degradation story:
//!
//! * the golden-probe canary **detects** the corruption (no later than
//!   its period allows) and the tenant quarantines;
//! * every execution voided by the failing canary is retried or timed
//!   out — **no silently-corrupt response is ever released** (every
//!   released capture is bit-identical to direct inference on the
//!   pristine deployment);
//! * after the modeled repair the tenant **recovers**: dispatch
//!   returns to the healthy deployment and completions resume;
//! * the whole timeline is **byte-stable**: same seeds, same rendered
//!   `ServeReport` and same health telemetry at any worker count;
//! * the accounting identity
//!   `offered == completed + shed + rejected + timed_out` closes.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc::cim::FaultSpec;
use yoloc::core::compiler::{CompileOptions, CompiledNetwork, FaultConfig};
use yoloc::core::engine::{sample_stream_seed, WorkerPool};
use yoloc::core::serve::{
    AdmissionPolicy, ArrivalPattern, Broker, BrokerConfig, Disposition, HealthConfig, LoadGen,
    ServeOutput, TenantConfig, TrafficSpec, VirtualClock,
};
use yoloc::models::zoo;
use yoloc::tensor::Tensor;

const INFER_SEED: u64 = 0xFA17_CA57;
const CHAOS_AT_NS: u64 = 600_000;
const HORIZON_NS: u64 = 2_000_000;
const REPAIR_NS: u64 = 1_000_000;

fn nets() -> (CompiledNetwork, CompiledNetwork) {
    let desc = zoo::scaled(&zoo::vgg8(3), 16, (16, 16));
    let pristine = CompiledNetwork::compile_random(&desc, 23, CompileOptions::paper_default())
        .expect("pristine compile");
    let mut opts = CompileOptions::paper_default();
    opts.faults = Some(FaultConfig::sized(
        FaultSpec {
            stuck_rate: 0.02,
            dead_subarray_rate: 0.10,
            adc_fault_rate: 0.05,
            ..FaultSpec::uniform(5, 0.0)
        },
        4,
    ));
    let faulty = CompiledNetwork::compile_random(&desc, 23, opts).expect("faulty twin compile");
    (pristine, faulty)
}

fn health() -> HealthConfig {
    HealthConfig {
        canary_period_ns: 100_000,
        canary_seed: 0xCA_11A2,
        max_retries: 3,
        repair_ns: REPAIR_NS,
    }
}

fn trace(deadline_ns: Option<u64>) -> Vec<yoloc::core::serve::Arrival> {
    LoadGen::new(29).trace(
        &[TrafficSpec {
            model: 0,
            pattern: ArrivalPattern::Poisson {
                rate_rps: 100_000.0,
            },
            deadline_ns,
        }],
        HORIZON_NS,
    )
}

fn run_chaos(
    pristine: &CompiledNetwork,
    faulty: &CompiledNetwork,
    trace: &[yoloc::core::serve::Arrival],
    workers: usize,
    capture: bool,
) -> ServeOutput {
    WorkerPool::with(workers, |pool| {
        let mut broker = Broker::new(
            VirtualClock::new(),
            BrokerConfig {
                infer_seed: INFER_SEED,
                batch_overhead_ns: 20_000,
                capture,
                health: Some(health()),
            },
        );
        broker.deploy(
            "vgg",
            pristine,
            TenantConfig {
                queue_cap: trace.len().max(1),
                admission: AdmissionPolicy::RejectNew,
                max_batch: 8,
                window_ns: 40_000,
            },
        );
        broker.inject_fault(0, CHAOS_AT_NS, faulty);
        broker.run(trace, pool)
    })
}

fn assert_identity(out: &ServeOutput, offered: u64) {
    let r = &out.report;
    assert_eq!(r.offered, offered);
    assert_eq!(
        r.completed + r.shed + r.rejected + r.timed_out,
        r.offered,
        "accounting identity broke"
    );
    for m in &r.models {
        assert_eq!(m.completed + m.shed + m.rejected + m.timed_out, m.offered);
    }
}

#[test]
fn canary_detects_quarantines_and_recovers() {
    let (pristine, faulty) = nets();
    // Sanity: the twin is genuinely corrupt on an arbitrary input.
    let (c, h, w) = pristine.input_shape();
    let x = Tensor::rand_uniform(&[1, c, h, w], 0.0, 1.0, &mut StdRng::seed_from_u64(1));
    let (y_p, _) = pristine.infer(&x, &mut StdRng::seed_from_u64(2));
    let (y_f, _) = faulty.infer(&x, &mut StdRng::seed_from_u64(2));
    assert_ne!(y_p.data(), y_f.data(), "faulty twin must corrupt outputs");

    let trace = trace(None);
    let out = run_chaos(&pristine, &faulty, &trace, 2, true);
    assert_identity(&out, trace.len() as u64);

    let hs = &out.health[0];
    assert!(hs.probes > 0, "canaries must have run");
    let detect = *hs
        .failures_at_ns
        .first()
        .expect("the canary must detect the injected fault");
    assert!(
        detect >= CHAOS_AT_NS,
        "detection ({detect} ns) cannot precede the fault ({CHAOS_AT_NS} ns)"
    );
    let repair = *hs
        .repairs_at_ns
        .first()
        .expect("the quarantine must lapse into a repair");
    assert!(
        repair >= detect + REPAIR_NS,
        "repair ({repair} ns) must cover the modeled remap window"
    );
    assert!(hs.quarantined_ns >= REPAIR_NS);

    // Voided executions were retried, and with no deadlines and a
    // roomy queue every request eventually completes on the repaired
    // deployment: full recovery, nothing lost.
    assert!(out.report.retried > 0, "the failed canary must void work");
    assert_eq!(out.report.timed_out, 0);
    assert_eq!(out.report.completed, trace.len() as u64);

    // Completions resume *after* the repair — recovery is observable.
    assert!(
        out.outcomes
            .iter()
            .any(|o| o.disposition == Disposition::Completed && o.start_ns >= repair),
        "post-repair completions must exist"
    );

    // The no-silent-corruption gate: every released capture matches
    // direct inference on the PRISTINE deployment bit-for-bit, even
    // though some of these requests first executed on the faulty twin.
    let mut oracle: HashMap<u64, Vec<f32>> = HashMap::new();
    let mut arena = pristine.take_arena();
    for a in &trace {
        let x = Tensor::rand_uniform(
            &[1, c, h, w],
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(a.input_seed),
        );
        let mut rng = StdRng::seed_from_u64(sample_stream_seed(INFER_SEED, a.id as usize));
        let (y, _) = pristine.infer_in(&x, &mut rng, &mut arena);
        oracle.insert(a.id, y.data().to_vec());
    }
    pristine.give_arena(arena);
    assert_eq!(out.captures.len(), trace.len());
    for cap in &out.captures {
        assert_eq!(
            &oracle[&cap.id], &cap.logits,
            "request {}: a corrupt result was released",
            cap.id
        );
    }
}

#[test]
fn chaos_timeline_is_byte_stable() {
    let (pristine, faulty) = nets();
    let trace = trace(None);
    let first = run_chaos(&pristine, &faulty, &trace, 1, false);
    for workers in [1usize, 4] {
        let again = run_chaos(&pristine, &faulty, &trace, workers, false);
        assert_eq!(
            first.report.render(),
            again.report.render(),
            "rendered report diverged at {workers} workers"
        );
        assert_eq!(first.health[0].probes, again.health[0].probes);
        assert_eq!(
            first.health[0].failures_at_ns,
            again.health[0].failures_at_ns
        );
        assert_eq!(first.health[0].repairs_at_ns, again.health[0].repairs_at_ns);
    }
}

#[test]
fn deadlines_expire_in_quarantine_as_timeouts_not_corruption() {
    let (pristine, faulty) = nets();
    // Deadlines shorter than the repair window: requests queued during
    // quarantine must time out (never execute corrupt, never hang).
    let trace = trace(Some(400_000));
    let out = run_chaos(&pristine, &faulty, &trace, 2, false);
    assert_identity(&out, trace.len() as u64);
    assert!(
        out.report.timed_out > 0,
        "quarantine + tight deadlines must time requests out"
    );
    assert!(out.report.completed > 0, "service must still make progress");
    for o in &out.outcomes {
        if o.disposition == Disposition::TimedOut {
            assert_eq!(o.batch_id, yoloc::core::serve::NO_BATCH);
            assert!(o.latency_ns().is_none());
        }
    }
}

#[test]
fn healthy_run_never_trips_the_canary() {
    let (pristine, _) = nets();
    let trace = trace(None);
    let out = WorkerPool::with(2, |pool| {
        let mut broker = Broker::new(
            VirtualClock::new(),
            BrokerConfig {
                infer_seed: INFER_SEED,
                batch_overhead_ns: 20_000,
                capture: false,
                health: Some(health()),
            },
        );
        broker.deploy(
            "vgg",
            &pristine,
            TenantConfig {
                queue_cap: trace.len().max(1),
                admission: AdmissionPolicy::RejectNew,
                max_batch: 8,
                window_ns: 40_000,
            },
        );
        broker.run(&trace, pool)
    });
    assert_identity(&out, trace.len() as u64);
    let hs = &out.health[0];
    assert!(hs.probes > 0, "canaries still run on healthy fabrics");
    assert!(hs.failures_at_ns.is_empty(), "no failure without a fault");
    assert_eq!(hs.quarantined_ns, 0);
    assert_eq!(out.report.timed_out, 0);
    assert_eq!(out.report.retried, 0);
    assert_eq!(out.report.completed, trace.len() as u64);
}
