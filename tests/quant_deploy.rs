//! Integration: quantization-aware training followed by deployment — a
//! QAT-projected model survives the trip onto the analog macro with less
//! accuracy change than its unconstrained twin at low precision.

use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc::quant::qat::{fake_quantize, project_to_grid, ste_mask};
use yoloc::quant::QuantParams;
use yoloc::tensor::Tensor;

#[test]
fn fake_quant_composes_with_ste() {
    let p = QuantParams::symmetric(1.0, 4);
    let mut rng = StdRng::seed_from_u64(1);
    let w = Tensor::randn(&[128], 0.0, 0.4, &mut rng);
    let q = fake_quantize(&w, p);
    // Values on-grid; gradient mask passes the in-range ones.
    let mask = ste_mask(&w, p);
    let in_range = mask.data().iter().filter(|&&m| m == 1.0).count();
    assert!(in_range > 100, "most values in range: {in_range}");
    for (&orig, &fq) in w.data().iter().zip(q.data()) {
        assert!((orig - fq).abs() <= p.scale / 2.0 + 1e-6);
    }
}

#[test]
fn grid_projection_is_stable_under_iteration() {
    // Projected SGD's invariant: once on-grid, projecting again (with the
    // same deduced scale) is a no-op.
    let mut rng = StdRng::seed_from_u64(2);
    let mut w = Tensor::randn(&[64], 0.0, 0.5, &mut rng);
    let e1 = project_to_grid(&mut w, 3);
    let snapshot = w.clone();
    let e2 = project_to_grid(&mut w, 3);
    assert!(e1 > 0.0);
    assert!(e2 < 1e-6, "second projection should be a no-op: {e2}");
    assert_eq!(w, snapshot);
}

#[test]
fn per_channel_beats_per_tensor_on_imbalanced_weights() {
    // The reason the deployment pipeline quantizes per channel: channels
    // with tiny dynamic range are crushed by a shared scale.
    use yoloc::quant::{PerChannelQuant, QuantTensor};
    let mut rng = StdRng::seed_from_u64(3);
    let mut w = Tensor::randn(&[4, 64], 0.0, 0.01, &mut rng);
    // One loud channel dominates the per-tensor scale.
    for v in &mut w.data_mut()[..64] {
        *v *= 100.0;
    }
    let per_tensor = QuantTensor::quantize(&w, QuantParams::symmetric(w.abs_max(), 8));
    let per_channel = PerChannelQuant::quantize(&w, 8);
    // Compare reconstruction error on the *quiet* channels, which the
    // shared per-tensor scale crushes.
    let quiet_err = |r: &Tensor| -> f64 {
        r.sub(&w).data()[64..]
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
    };
    let e_tensor = quiet_err(&per_tensor.dequantize());
    let e_channel = quiet_err(&per_channel.dequantize());
    assert!(
        e_channel < e_tensor / 100.0,
        "per-channel {e_channel} vs per-tensor {e_tensor}"
    );
}
