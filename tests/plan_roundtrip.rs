//! Plan round-trip suite: a deserialized execution plan must be
//! **bit-identical** — logits, `MvmStats`, and the full
//! `ExecutionReport` — to the freshly compiled network it was serialized
//! from, across random zoo graphs and all three mapping strategies; and
//! a warm deploy through the content-addressed [`PlanCache`] must be
//! served without recompiling and execute identically to the cold one.
//!
//! This is the acceptance gate of the plan-serialization work: the
//! `yoloc-plan/1` document captures *all* value state the executors read
//! (quantized weight codes, dequantization tables, placement, buffer
//! plan, memory hierarchy), so rebuilding from bytes is required to be
//! *I/O*, never *arithmetic*.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use yoloc::core::compiler::cache::PlanCache;
use yoloc::core::compiler::{CompileOptions, CompiledNetwork};
use yoloc::core::mapping::MappingStrategy;
use yoloc::models::zoo;
use yoloc::tensor::Tensor;

mod common;
use common::zoo::{compile, named_zoo_nets, strategies};

/// Runs one inference on `net` under a deterministic RNG and input.
fn run(net: &CompiledNetwork, seed: u64) -> (Vec<f32>, yoloc::core::compiler::ExecutionReport) {
    let (c, h, w) = net.input_shape();
    let mut in_rng = StdRng::seed_from_u64(seed ^ 0x0D5E_11A7);
    let x = Tensor::rand_uniform(&[1, c, h, w], 0.0, 1.0, &mut in_rng);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00C4_C8ED);
    let (y, r) = net.infer(&x, &mut rng);
    (y.data().to_vec(), r.clone())
}

/// Compiles `desc`, pushes the plan through serialize → deserialize, and
/// checks the rebuilt network is indistinguishable from the original:
/// same metadata, bit-identical execution, and a byte-stable document.
fn assert_plan_roundtrip(desc: &yoloc::models::NetworkDesc, seed: u64, strategy: MappingStrategy) {
    let net = compile(desc, seed, strategy);

    let text = net.serialize_plan();
    let back = CompiledNetwork::deserialize_plan(&text)
        .unwrap_or_else(|e| panic!("{}: deserialize failed: {e}", desc.name));

    assert_eq!(net.name, back.name, "{}: name diverged", desc.name);
    assert_eq!(net.mapping, back.mapping, "{}: mapping diverged", desc.name);
    assert_eq!(
        net.pass_reports, back.pass_reports,
        "{}: pass reports diverged",
        desc.name
    );
    assert_eq!(
        net.input_shape(),
        back.input_shape(),
        "{}: input shape diverged",
        desc.name
    );

    let (y_fresh, r_fresh) = run(&net, seed);
    let (y_back, r_back) = run(&back, seed);
    assert_eq!(
        y_fresh, y_back,
        "{}: logits diverged after round trip",
        desc.name
    );
    assert_eq!(
        r_fresh, r_back,
        "{}: execution report diverged after round trip",
        desc.name
    );

    // serialize(deserialize(s)) == s: the document is byte-stable, which
    // is what makes the content-addressed cache store idempotent.
    assert_eq!(
        text,
        back.serialize_plan(),
        "{}: re-serialized document diverged",
        desc.name
    );
}

/// Deploys `desc` twice through one on-disk cache plus once through a
/// fresh cache on the same directory (a process restart): the warm
/// deploys must be served without falling through to the compiler and
/// execute bit-identically to the cold one.
fn assert_cache_hit_parity(desc: &yoloc::models::NetworkDesc, seed: u64, dir: &std::path::Path) {
    let opts = CompileOptions::paper_default;
    let cache = PlanCache::at(dir);
    let cold = cache
        .compile_random(desc, seed, opts())
        .unwrap_or_else(|e| panic!("{}: cold deploy failed: {e}", desc.name));
    assert_eq!(
        (cache.hits(), cache.misses()),
        (0, 1),
        "{}: cold deploy must miss",
        desc.name
    );

    let warm = cache
        .compile_random(desc, seed, opts())
        .unwrap_or_else(|e| panic!("{}: warm deploy failed: {e}", desc.name));
    assert_eq!(
        (cache.hits(), cache.misses()),
        (1, 1),
        "{}: warm deploy fell through to the compiler",
        desc.name
    );

    let restarted = PlanCache::at(dir);
    let from_disk = restarted
        .compile_random(desc, seed, opts())
        .unwrap_or_else(|e| panic!("{}: disk deploy failed: {e}", desc.name));
    assert_eq!(
        (restarted.hits(), restarted.misses()),
        (1, 0),
        "{}: restarted deploy recompiled instead of reading the store",
        desc.name
    );

    let (y_cold, r_cold) = run(&cold, seed);
    for (label, net) in [("warm", &warm), ("disk", &from_disk)] {
        let (y, r) = run(net, seed);
        assert_eq!(y_cold, y, "{}: {label} hit logits diverged", desc.name);
        assert_eq!(r_cold, r, "{}: {label} hit report diverged", desc.name);
    }
}

#[test]
fn named_zoo_networks_round_trip_across_all_strategies() {
    for desc in &named_zoo_nets() {
        for strategy in strategies() {
            assert_plan_roundtrip(desc, 23, strategy);
        }
    }
}

#[test]
fn cache_hits_equal_cache_misses_bit_for_bit() {
    let dir =
        std::env::temp_dir().join(format!("yoloc-plan-roundtrip-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let nets = [
        zoo::scaled(&zoo::vgg8(3), 16, (16, 16)),
        zoo::scaled(&zoo::resnet18(3), 16, (32, 32)),
    ];
    for desc in &nets {
        assert_cache_hit_parity(desc, 23, &dir);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_random_zoo_graphs_round_trip(seed in 0u64..100_000) {
        // Random shape-consistent graphs (convs, activations, pooling,
        // plain and projected residuals, linear heads); the mapping
        // strategy rotates with the seed so the sweep covers all three.
        let desc = zoo::random_zoo(seed);
        let strategy = strategies()[(seed % 3) as usize];
        assert_plan_roundtrip(&desc, seed, strategy);
    }
}
