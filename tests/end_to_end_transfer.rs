//! Integration: the full ReBranch transfer-learning loop at smoke scale —
//! synthetic data generation, pretraining, strategy construction,
//! training with frozen ROM weights, and the accuracy/area read-out.
//!
//! Training budgets are reduced by default; `YOLOC_FULL_TRAIN=1` restores
//! the full budgets and thresholds (see `tests/common/mod.rs`).

mod common;

use yoloc::core::rebranch::ReBranchRatios;
use yoloc::core::strategies::{
    build_strategy_model, evaluate_strategy, pretrain_base, Strategy, TrainConfig,
};
use yoloc::core::tiny_models::Family;
use yoloc::data::classification::TransferSuite;
use yoloc::tensor::{Layer, LayerExt};

fn smoke_cfg() -> TrainConfig {
    TrainConfig {
        steps: common::budget(90, 75),
        batch: 16,
        lr: 0.07,
        momentum: 0.9,
    }
}

/// Budget for tests whose assertions are structural (frozen weights, area
/// ordering) and do not depend on converged accuracy.
fn structural_cfg() -> TrainConfig {
    TrainConfig {
        steps: common::budget(90, 14),
        batch: common::budget(16, 8),
        lr: 0.07,
        momentum: 0.9,
    }
}

#[test]
fn rebranch_transfer_end_to_end() {
    let suite = TransferSuite::new(77);
    let channels: &[usize] = common::budget(&[12, 16, 20], &[8, 12, 16]);
    let base = pretrain_base(Family::Vgg, channels, &suite.pretrain, smoke_cfg(), 77);
    let target = &suite.cifar10_like;
    let rb = evaluate_strategy(
        &base,
        target,
        Strategy::ReBranch(ReBranchRatios::paper_default()),
        smoke_cfg(),
        78,
    );
    // Learns well above the 10% chance level, with most bits in ROM (at
    // the reduced default budget the margin over chance is smaller but
    // still decisive).
    let floor = common::budget(0.5, 0.3);
    assert!(rb.accuracy > floor, "accuracy {}", rb.accuracy);
    assert!(
        rb.rom_bits > 4 * rb.sram_bits,
        "rom {} sram {}",
        rb.rom_bits,
        rb.sram_bits
    );
}

#[test]
fn frozen_trunk_never_changes_during_transfer() {
    let suite = TransferSuite::new(99);
    let base = pretrain_base(
        Family::Vgg,
        &[10, 12],
        &suite.pretrain,
        structural_cfg(),
        99,
    );
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(100);
    let mut model = build_strategy_model(
        &base,
        Strategy::ReBranch(ReBranchRatios { d: 2, u: 2 }),
        suite.cifar10_like.classes(),
        &mut rng,
    );
    let before: Vec<Vec<f32>> = model
        .params()
        .iter()
        .filter(|p| p.frozen)
        .map(|p| p.value.data().to_vec())
        .collect();
    yoloc::core::strategies::train_model(
        &mut model,
        &suite.cifar10_like,
        structural_cfg(),
        &mut rng,
        |_| {},
    );
    let after: Vec<Vec<f32>> = model
        .params()
        .iter()
        .filter(|p| p.frozen)
        .map(|p| p.value.data().to_vec())
        .collect();
    assert_eq!(before, after, "ROM-resident weights must be immutable");
    // And something must have trained.
    assert!(model.trainable_param_count() > 0);
}

#[test]
fn strategy_area_ordering_matches_fig10() {
    let suite = TransferSuite::new(13);
    let base = pretrain_base(
        Family::Vgg,
        &[12, 16, 20],
        &suite.pretrain,
        structural_cfg(),
        13,
    );
    let cfg = structural_cfg();
    let target = &suite.fashion_like;
    let all_sram = evaluate_strategy(&base, target, Strategy::AllSram, cfg, 14);
    let all_rom = evaluate_strategy(&base, target, Strategy::AllRom, cfg, 14);
    let deep = evaluate_strategy(&base, target, Strategy::Atl { trainable_tail: 1 }, cfg, 14);
    let rb = evaluate_strategy(
        &base,
        target,
        Strategy::ReBranch(ReBranchRatios::paper_default()),
        cfg,
        14,
    );
    // Fig. 10(a) ordering: All-ROM < ReBranch < Deep-Conv < All-SRAM area.
    assert!(all_rom.area_mm2 < rb.area_mm2);
    assert!(rb.area_mm2 < deep.area_mm2);
    assert!(deep.area_mm2 < all_sram.area_mm2);
}
