//! Deterministic serving simulations on the virtual clock.
//!
//! Every scenario here is a pure function of its seed: the load
//! generator and broker draw all entropy from `sample_stream_seed`
//! streams (never the host), and the clock is [`VirtualClock`], so the
//! timeline is host-independent. The suite pins:
//!
//! * **byte-stability** — the same seed + trace config produce an
//!   identical serialized `ServeReport` on two consecutive runs, *and*
//!   at every worker count (the "no ambient entropy" gate);
//! * property-style invariants over seeded trace sweeps: per-model
//!   FIFO completion order, no batch exceeding its window bounds, the
//!   admission queue never exceeding its cap, no tenant starving under
//!   sustained overload, and full accounting — completed + shed +
//!   rejected == offered.

use std::collections::HashMap;

use yoloc::core::compiler::CompiledNetwork;
use yoloc::core::engine::WorkerPool;
use yoloc::core::serve::{
    AdmissionPolicy, Arrival, ArrivalPattern, Broker, BrokerConfig, LoadGen, RequestOutcome,
    ServeOutput, TenantConfig, TrafficSpec, VirtualClock, NO_BATCH,
};
use yoloc::models::zoo;

mod common;
use common::zoo::compile;

/// Whether CI asked for the reduced sweep (`YOLOC_SMOKE=1`).
fn smoke() -> bool {
    std::env::var_os("YOLOC_SMOKE").is_some_and(|v| v != "0")
}

const WINDOW_NS: u64 = 50_000;
const MAX_BATCH: usize = 4;
const QUEUE_CAP: usize = 8;

/// The standard two-tenant overload scenario: a Poisson + ramp stream
/// on the VGG tenant (shed-oldest) and a queue-flooding bursty stream
/// on the YOLO tenant (reject-new).
struct Scenario {
    nets: [CompiledNetwork; 2],
    trace: Vec<Arrival>,
}

fn scenario(seed: u64) -> Scenario {
    let nets = [
        compile(
            &zoo::scaled(&zoo::vgg8(4), 16, (16, 16)),
            seed ^ 0xA11CE,
            yoloc::core::mapping::MappingStrategy::Packed,
        ),
        compile(
            &zoo::scaled(&zoo::tiny_yolo(4, 2), 32, (32, 32)),
            seed ^ 0xB0B,
            yoloc::core::mapping::MappingStrategy::Sharded { chips: 3 },
        ),
    ];
    // The horizon is NOT shrunk under smoke: overload (sheds, rejects,
    // deadline misses) needs the full 600 µs to build, and the whole
    // suite stays under a few seconds anyway.
    let duration = 600_000;
    let trace = LoadGen::new(seed).trace(
        &[
            TrafficSpec {
                model: 0,
                pattern: ArrivalPattern::Poisson { rate_rps: 80_000.0 },
                // Just under the queue-backed tail latency: the
                // overloaded stream must record real deadline misses.
                deadline_ns: Some(100_000),
            },
            TrafficSpec {
                model: 1,
                // Bursts of 20 against a queue bound of 8: guaranteed
                // backpressure.
                pattern: ArrivalPattern::Bursty {
                    period_ns: 120_000,
                    burst: 20,
                },
                deadline_ns: Some(400_000),
            },
            TrafficSpec {
                model: 0,
                pattern: ArrivalPattern::Ramp {
                    start_rps: 0.0,
                    end_rps: 120_000.0,
                },
                deadline_ns: None,
            },
        ],
        duration,
    );
    Scenario { nets, trace }
}

fn run_scenario(s: &Scenario, workers: usize) -> ServeOutput {
    WorkerPool::with(workers, |pool| {
        let mut broker = Broker::new(
            VirtualClock::new(),
            BrokerConfig {
                infer_seed: 0x5E12_F00D,
                batch_overhead_ns: 20_000,
                capture: false,
                health: None,
            },
        );
        broker.deploy(
            "vgg8-16",
            &s.nets[0],
            TenantConfig {
                queue_cap: QUEUE_CAP,
                admission: AdmissionPolicy::ShedOldest,
                max_batch: MAX_BATCH,
                window_ns: WINDOW_NS,
            },
        );
        broker.deploy(
            "tiny-yolo-32",
            &s.nets[1],
            TenantConfig {
                queue_cap: QUEUE_CAP,
                admission: AdmissionPolicy::RejectNew,
                max_batch: MAX_BATCH,
                window_ns: WINDOW_NS,
            },
        );
        broker.run(&s.trace, pool)
    })
}

/// Checks every serving invariant over one run's outcomes.
fn assert_invariants(s: &Scenario, out: &ServeOutput) {
    let r = &out.report;
    // Accounting: every offered request is completed, shed, rejected
    // or timed out — globally and per model.
    assert_eq!(r.offered, s.trace.len() as u64);
    assert_eq!(r.completed + r.shed + r.rejected + r.timed_out, r.offered);
    for m in &r.models {
        assert_eq!(
            m.completed + m.shed + m.rejected + m.timed_out,
            m.offered,
            "{}: per-model accounting broke",
            m.name
        );
        assert_eq!(
            m.deadline_hits + m.deadline_misses,
            m.completed,
            "{}: deadline accounting broke",
            m.name
        );
        // Queues stay inside their bound.
        assert!(
            m.max_queue_depth <= QUEUE_CAP as u64,
            "{}: queue exceeded its cap ({} > {QUEUE_CAP})",
            m.name,
            m.max_queue_depth
        );
        assert!(
            m.max_batch <= MAX_BATCH as u64,
            "{}: batch exceeded its size bound",
            m.name
        );
        // Under sustained overload no tenant starves: round-robin
        // guarantees both models complete work.
        assert!(m.completed > 0, "{}: tenant starved", m.name);
        assert!(m.sustained_qps > 0.0, "{}: zero sustained QPS", m.name);
    }
    // The overload scenario actually overloads: backpressure fired on
    // both policies.
    let vgg = &r.models[0];
    let yolo = &r.models[1];
    assert!(vgg.shed > 0, "shed-oldest tenant never shed");
    assert!(yolo.rejected > 0, "reject-new tenant never rejected");
    assert_eq!(vgg.rejected, 0, "shed-oldest tenant must not reject");
    assert_eq!(yolo.shed, 0, "reject-new tenant must not shed");

    // Per-model FIFO completion: in recording order, completed ids per
    // model are strictly increasing (batches retire in launch order and
    // queues are FIFO).
    let mut last_id: HashMap<usize, u64> = HashMap::new();
    for o in completed(&out.outcomes) {
        if let Some(prev) = last_id.insert(o.model, o.id) {
            assert!(
                prev < o.id,
                "model {} completed id {} after {}",
                o.model,
                o.id,
                prev
            );
        }
    }

    // Batch-window invariant: every batch either filled to its size
    // bound or waited out the time window of its oldest member.
    let mut batches: HashMap<u64, Vec<&RequestOutcome>> = HashMap::new();
    for o in completed(&out.outcomes) {
        assert_ne!(o.batch_id, NO_BATCH);
        batches.entry(o.batch_id).or_default().push(o);
    }
    for (bid, members) in &batches {
        let size = members[0].batch_size;
        assert_eq!(members.len(), size, "batch {bid}: member count diverged");
        assert!(size <= MAX_BATCH, "batch {bid} exceeded its size bound");
        let oldest_enqueue = members.iter().map(|o| o.enqueue_ns).min().unwrap();
        let start = members[0].start_ns;
        assert!(
            size == MAX_BATCH || start >= oldest_enqueue + WINDOW_NS,
            "batch {bid} closed early: size {size} at {start} ns, \
             oldest member enqueued {oldest_enqueue} ns"
        );
        for o in members {
            assert_eq!(o.start_ns, start, "batch {bid}: members disagree on start");
            assert!(o.enqueue_ns <= o.start_ns && o.start_ns < o.finish_ns);
        }
    }
}

fn completed(outcomes: &[RequestOutcome]) -> impl Iterator<Item = &RequestOutcome> {
    outcomes
        .iter()
        .filter(|o| o.disposition == yoloc::core::serve::Disposition::Completed)
}

#[test]
fn same_seed_produces_byte_stable_reports() {
    let s = scenario(42);
    // Two consecutive runs: the serialized report must match byte for
    // byte — the generator and broker own all their entropy.
    let first = run_scenario(&s, 2);
    let second = run_scenario(&s, 2);
    assert_eq!(
        first.report.render(),
        second.report.render(),
        "consecutive runs diverged: ambient entropy leaked into serving"
    );
    // And the timeline is independent of the worker count: parallelism
    // is an execution detail, never a scheduling input.
    for workers in [1, 8] {
        assert_eq!(
            first.report.render(),
            run_scenario(&s, workers).report.render(),
            "report depends on worker count {workers}"
        );
    }
    assert_invariants(&s, &first);
}

#[test]
fn seeded_sweep_holds_serving_invariants() {
    let seeds: &[u64] = if smoke() { &[7] } else { &[7, 1234, 98_765] };
    for &seed in seeds {
        let s = scenario(seed);
        let out = run_scenario(&s, 4);
        assert_invariants(&s, &out);
    }
}

#[test]
fn deadline_misses_reconcile_with_latency() {
    let s = scenario(5);
    let out = run_scenario(&s, 2);
    for o in completed(&out.outcomes) {
        let hit = o.finish_ns <= o.deadline_ns;
        assert_eq!(o.deadline_hit(), hit, "request {}: deadline_hit lied", o.id);
    }
    // The tight 100 µs deadline on the overloaded VGG stream must miss
    // at least once — otherwise the scenario tests nothing.
    assert!(
        out.report.models[0].deadline_misses > 0,
        "overloaded tenant never missed a deadline"
    );
    assert_invariants(&s, &out);
}
